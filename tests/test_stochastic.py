"""The stochastic scenario layer: determinism battery + distributions.

Two test families guard the ISSUE-7 scenario layer:

* **Seeded determinism** — the same (scenario, seed) must produce
  byte-identical results and identical cache keys across the serial
  backend, a warm process pool, a fresh-worker retry and two cold
  processes; different seeds must never share a cache key.
* **Statistical acceptance** — fixed-seed samples from every built-in
  arrival and execution-time model must match their nominal
  distributions (KS / chi-squared style bounds plus mean/variance
  sanity), so a refactor that silently breaks a sampler fails loudly.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import registry
from repro.common.config import SimConfig
from repro.common.errors import ReproError
from repro.eval.experiments import benchmark_cases, run_benchmark_case
from repro.harness import ResultCache
from repro.harness.artifacts import encode
from repro.harness.executor import ProcessPoolBackend, SerialBackend
from repro.harness.hashing import case_cache_key, scenario_fingerprint
from repro.harness.runner import run_cases
from repro.registry import register_workload
from repro.scenario import (
    Pcg64Stream,
    ScenarioSpec,
    canonical_scenario,
    compile_scenario,
    derive_stream,
    scenario_case_context,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def _bursty_spec(seed: int = 7) -> ScenarioSpec:
    return ScenarioSpec.make(
        arrival="bursty", arrival_params={"load": 0.8},
        etm="lognormal", scheduler="random",
        seed=seed, deadline_factor=20.0,
    )


@pytest.fixture(scope="module")
def tiny_config() -> SimConfig:
    return SimConfig(max_cycles=200_000_000).with_cores(4)


@pytest.fixture(scope="module")
def tiny_case():
    return benchmark_cases(quick=True, scale=0.05)[0]


def _digest(runs) -> str:
    """Canonical byte digest of a list of benchmark runs."""
    text = json.dumps(encode(list(runs)), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------- #
# Satellite 1: the seeded determinism battery
# --------------------------------------------------------------------- #
class TestSeededDeterminism:
    def test_serial_vs_warm_pool_byte_identical(self, tiny_config,
                                                tiny_case):
        spec = _bursty_spec()
        serial = run_cases(tiny_config, [tiny_case], num_workers=2,
                           executor=SerialBackend(), scenario=spec)
        pool = ProcessPoolBackend(2)
        try:
            # First dispatch warms the pool; the second runs on warm
            # workers — both must match the serial bytes exactly.
            cold = run_cases(tiny_config, [tiny_case], num_workers=2,
                             jobs=2, executor=pool, scenario=spec)
            warm = run_cases(tiny_config, [tiny_case], num_workers=2,
                             jobs=2, executor=pool, scenario=spec)
        finally:
            pool.close()
        assert _digest(serial) == _digest(cold) == _digest(warm)

    def test_two_cold_processes_byte_identical(self, tmp_path):
        script = (
            "import hashlib, json\n"
            "from repro.common.config import SimConfig\n"
            "from repro.eval.experiments import benchmark_cases, "
            "run_benchmark_case\n"
            "from repro.harness.artifacts import encode\n"
            "from repro.harness.hashing import case_cache_key\n"
            "from repro.scenario import ScenarioSpec\n"
            "spec = ScenarioSpec.make(arrival='bursty', "
            "arrival_params={'load': 0.8}, etm='lognormal', "
            "scheduler='random', seed=7, deadline_factor=20.0)\n"
            "config = SimConfig(max_cycles=200_000_000).with_cores(4)\n"
            "case = benchmark_cases(quick=True, scale=0.05)[0]\n"
            "run = run_benchmark_case(case, config, num_workers=2, "
            "scenario=spec)\n"
            "text = json.dumps(encode(run), sort_keys=True, "
            "separators=(',', ':'))\n"
            "print(hashlib.sha256(text.encode()).hexdigest())\n"
            "print(case_cache_key(case, config, 2, scenario=spec))\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        outputs = [
            subprocess.run([sys.executable, "-c", script], env=env,
                           capture_output=True, text=True, check=True,
                           cwd=REPO_ROOT).stdout
            for _ in range(2)
        ]
        assert outputs[0] == outputs[1]
        digest, key = outputs[0].split()
        assert len(digest) == 64 and len(key) == 64

    def test_retry_in_fresh_worker_byte_identical(self, tmp_path,
                                                  tiny_config):
        # A unit whose builder fails on the first attempt is re-run in a
        # fresh worker (retries=1); its result must be byte-identical to
        # a clean, never-failed run of the same seeded scenario.
        name = "stochastic-flaky-test"
        flag = tmp_path / "first-attempt"

        def flaky(**params):
            if not flag.exists():
                flag.write_text("tried", encoding="utf-8")
                raise RuntimeError("transient failure")
            from tests.helpers import make_chain_program
            return make_chain_program(num_tasks=6, payload=400)

        register_workload(name, description="fails once (test)")(flaky)
        try:
            spec = _bursty_spec()
            cases = benchmark_cases(workloads=[name])
            failures = []
            retried = run_cases(tiny_config, cases, num_workers=2,
                                retries=1, failures=failures,
                                scenario=spec)
            assert failures == []
            clean = run_cases(tiny_config, cases, num_workers=2,
                              retries=1, scenario=spec)
            assert _digest(retried) == _digest(clean)
        finally:
            registry.WORKLOADS.remove(name)

    def test_warm_cache_rerun_is_all_hits(self, tmp_path, tiny_config,
                                          tiny_case):
        spec = _bursty_spec()
        cache = ResultCache(tmp_path / "cache")
        first = run_cases(tiny_config, [tiny_case], num_workers=2,
                          cache=cache, scenario=spec)
        misses = cache.stats.misses
        assert misses >= 1
        second = run_cases(tiny_config, [tiny_case], num_workers=2,
                           cache=cache, scenario=spec)
        assert cache.stats.misses == misses  # zero new misses
        assert cache.stats.hits >= 1
        assert _digest(first) == _digest(second)

    def test_distinct_seeds_never_share_a_cache_key(self, tiny_case):
        config = SimConfig()
        base_key = case_cache_key(tiny_case, config)
        keys = {case_cache_key(tiny_case, config,
                               scenario=_bursty_spec(seed))
                for seed in range(10)}
        assert len(keys) == 10
        assert base_key not in keys

    def test_distinct_seeds_produce_distinct_results(self, tiny_config,
                                                     tiny_case):
        runs = {
            seed: run_benchmark_case(tiny_case, tiny_config, num_workers=2,
                                     scenario=_bursty_spec(seed))
            for seed in (3, 7)
        }
        p50 = {seed: run.results["phentos"].stats["scenario.latency_p50"]
               for seed, run in runs.items()}
        assert p50[3] != p50[7]

    def test_scenario_streams_independent_of_host_prng(self, tiny_case):
        # derive_stream must depend only on (seed, context), never on
        # process state, so pool workers and retries draw identically.
        stream_a = derive_stream(7, "etm", scenario_case_context(tiny_case))
        stream_b = derive_stream(7, "etm", scenario_case_context(tiny_case))
        assert [stream_a.next64() for _ in range(8)] == \
            [stream_b.next64() for _ in range(8)]
        other_role = derive_stream(7, "arrival",
                                   scenario_case_context(tiny_case))
        assert stream_a.next64() != other_role.next64()


# --------------------------------------------------------------------- #
# Scenario spec / fingerprint semantics
# --------------------------------------------------------------------- #
class TestScenarioSpec:
    def test_default_spec_canonicalises_to_none(self):
        assert canonical_scenario(None) is None
        assert canonical_scenario(ScenarioSpec()) is None
        assert scenario_fingerprint(ScenarioSpec()) is None

    def test_nonzero_seed_alone_is_not_default(self):
        spec = ScenarioSpec.make(seed=5)
        assert canonical_scenario(spec) is not None
        assert scenario_fingerprint(spec) is not None

    def test_component_params_enter_the_fingerprint(self):
        light = ScenarioSpec.make(arrival="poisson", seed=1)
        heavy = ScenarioSpec.make(arrival="poisson",
                                  arrival_params={"load": 0.5}, seed=1)
        assert scenario_fingerprint(light) != scenario_fingerprint(heavy)

    def test_describe_names_every_component(self):
        text = _bursty_spec().describe()
        assert "bursty" in text and "lognormal" in text
        assert "random" in text and "seed7" in text

    def test_unknown_scheduler_fails_at_compile(self, tiny_case):
        from tests.helpers import make_chain_program

        spec = ScenarioSpec.make(scheduler="edf-zzz", seed=1)
        with pytest.raises(ReproError):
            compile_scenario(spec, scenario_case_context(tiny_case),
                             make_chain_program(num_tasks=4, payload=50))

    def test_compiled_program_stamps_releases_and_deadlines(self,
                                                            tiny_case):
        from tests.helpers import make_chain_program

        program = make_chain_program(num_tasks=8, payload=500)
        compiled = compile_scenario(_bursty_spec(),
                                    scenario_case_context(tiny_case),
                                    program)
        releases = [task.release_cycle for task in compiled.program.tasks]
        assert releases == sorted(releases)
        assert releases[-1] > 0
        for task in compiled.program.tasks:
            assert task.deadline_cycle is not None
            assert task.deadline_cycle >= task.release_cycle + 1


# --------------------------------------------------------------------- #
# Satellite 2: statistical acceptance of the built-in distributions
# --------------------------------------------------------------------- #
def _ks_statistic(samples, cdf) -> float:
    """Two-sided Kolmogorov–Smirnov distance of samples from ``cdf``."""
    ordered = sorted(samples)
    n = len(ordered)
    distance = 0.0
    for index, value in enumerate(ordered):
        probability = cdf(value)
        distance = max(distance,
                       abs((index + 1) / n - probability),
                       abs(probability - index / n))
    return distance


_MEAN_TASK = 10_000.0  # large mean so integer rounding is negligible


def _arrival_samples(name: str, seed: int, count: int = 2000, **params):
    model = registry.arrival(name).create(**params)
    stream = derive_stream(seed, "acceptance", name)
    return model.inter_arrivals(stream, count, _MEAN_TASK)


def _etm_samples(name: str, seed: int, nominal: int = 10_000,
                 count: int = 2000, **params):
    model = registry.etm(name).create(**params)
    stream = derive_stream(seed, "acceptance", name)
    return [model.sample(stream, nominal) for _ in range(count)]


class TestArrivalDistributions:
    def test_periodic_gaps_are_constant(self):
        gaps = _arrival_samples("periodic", seed=1, load=1.0)
        assert len(set(gaps)) == 1
        assert gaps[0] == round(_MEAN_TASK)

    def test_periodic_load_scales_the_gap(self):
        slow = _arrival_samples("periodic", seed=1, load=0.5)
        fast = _arrival_samples("periodic", seed=1, load=2.0)
        assert slow[0] == 4 * fast[0]

    def test_poisson_gaps_pass_ks_against_exponential(self):
        gaps = _arrival_samples("poisson", seed=2, load=1.0)
        scale = _MEAN_TASK
        # Evaluate the CDF at value + 0.5 to undo the integer rounding.
        distance = _ks_statistic(
            gaps, lambda value: 1.0 - math.exp(-(value + 0.5) / scale))
        # 1% KS critical value at n=2000 is ~0.036; allow rounding slack.
        assert distance < 0.05

    def test_poisson_mean_and_variance_sane(self):
        gaps = _arrival_samples("poisson", seed=3, load=1.0)
        n = len(gaps)
        mean = sum(gaps) / n
        variance = sum((gap - mean) ** 2 for gap in gaps) / n
        assert abs(mean - _MEAN_TASK) / _MEAN_TASK < 0.1
        # Exponential: variance == mean^2 (CV == 1).
        assert 0.7 < variance / mean ** 2 < 1.4

    def test_bursty_is_overdispersed_versus_poisson(self):
        gaps = _arrival_samples("bursty", seed=4, load=1.0, burst=8.0,
                                switch=0.05)
        n = len(gaps)
        mean = sum(gaps) / n
        variance = sum((gap - mean) ** 2 for gap in gaps) / n
        # An MMPP mixes fast and slow phases: its squared coefficient of
        # variation must exceed the exponential's 1.
        assert variance / mean ** 2 > 1.3

    def test_bursty_visits_both_phases(self):
        gaps = _arrival_samples("bursty", seed=5, load=1.0, burst=8.0,
                                switch=0.1)
        mean = sum(gaps) / len(gaps)
        assert any(gap < mean / 2 for gap in gaps)
        assert any(gap > mean * 2 for gap in gaps)

    def test_nonpositive_load_rejected(self):
        with pytest.raises(ReproError):
            _arrival_samples("poisson", seed=1, load=0.0)

    def test_gaps_are_positive_integers(self):
        for name in registry.arrival_names():
            gaps = _arrival_samples(name, seed=6, count=200)
            assert all(isinstance(gap, int) and gap >= 1 for gap in gaps)


class TestEtmDistributions:
    def test_constant_is_exact(self):
        samples = _etm_samples("constant", seed=1, factor=1.5, count=50)
        assert set(samples) == {15_000}

    def test_uniform_stays_in_bounds_with_unit_mean(self):
        samples = _etm_samples("uniform", seed=2)
        assert all(8_000 <= sample <= 12_000 for sample in samples)
        mean = sum(samples) / len(samples)
        assert abs(mean - 10_000) / 10_000 < 0.02

    def test_uniform_chi_squared_uniformity(self):
        samples = _etm_samples("uniform", seed=3, count=4000)
        bins = [0] * 10
        for sample in samples:
            index = min(int((sample - 8_000) / 400), 9)
            bins[index] += 1
        expected = len(samples) / len(bins)
        chi2 = sum((count - expected) ** 2 / expected for count in bins)
        # 9 degrees of freedom: 1% critical value is 21.7.
        assert chi2 < 27.0

    def test_lognormal_unit_mean_and_positive_skew(self):
        samples = _etm_samples("lognormal", seed=4, count=4000)
        mean = sum(samples) / len(samples)
        assert abs(mean - 10_000) / 10_000 < 0.05  # mean-1 normalisation
        assert all(sample >= 1 for sample in samples)
        ordered = sorted(samples)
        median = ordered[len(ordered) // 2]
        assert mean > median  # right-skewed

    def test_zero_payload_stays_zero(self):
        for name in registry.etm_names():
            model = registry.etm(name).create()
            stream = derive_stream(1, "zero", name)
            assert model.sample(stream, 0) == 0


class TestStreamStatistics:
    def test_randrange_chi_squared_uniform(self):
        stream = derive_stream(9, "chi2")
        bins = [0] * 20
        for _ in range(20_000):
            bins[stream.randrange(20)] += 1
        expected = 1000.0
        chi2 = sum((count - expected) ** 2 / expected for count in bins)
        # 19 degrees of freedom: 1% critical value is 36.2.
        assert chi2 < 40.0

    def test_normal_moments(self):
        stream = derive_stream(10, "normal")
        samples = [stream.normal(0.0, 1.0) for _ in range(8000)]
        mean = sum(samples) / len(samples)
        variance = sum((value - mean) ** 2 for value in samples) / len(samples)
        assert abs(mean) < 0.05
        assert abs(variance - 1.0) < 0.1

    def test_random_is_in_unit_interval(self):
        stream = derive_stream(11, "unit")
        values = [stream.random() for _ in range(1000)]
        assert all(0.0 <= value < 1.0 for value in values)
        assert abs(sum(values) / len(values) - 0.5) < 0.05
