"""Tests for the executor backends and sweep failure isolation."""

from __future__ import annotations

import json
import os

import pytest

from repro import registry
from repro.common.config import SimConfig
from repro.common.errors import EvaluationError
from repro.eval.experiments import benchmark_cases
from repro.eval.scaling import align_runs_by_cores
from repro.harness import ExperimentEngine, ResultCache
from repro.harness.cli import main as cli_main
from repro.harness.executor import (
    ProcessPoolBackend,
    SerialBackend,
    SweepError,
    UnitFailure,
    batch_size,
)
from repro.harness.progress import Progress
from repro.harness.runner import (
    CaseUnit,
    _plugin_payload,
    run_case_grid,
    run_cases,
)
from repro.registry import register_runtime, register_workload

POISON_PLUGIN = os.path.join(os.path.dirname(__file__), "plugins",
                             "poison_workload.py")


@pytest.fixture(scope="module")
def tiny_config() -> SimConfig:
    return SimConfig(max_cycles=200_000_000).with_cores(4)


@pytest.fixture(scope="module")
def tiny_cases():
    return benchmark_cases(quick=True, scale=0.2)[:2]


@pytest.fixture
def poison_workload():
    """Register an always-failing workload; yields its name."""
    name = "poison-unit-test"

    @register_workload(name, description="always fails (test)")
    def _poison(**params):
        raise RuntimeError("injected unit failure")

    yield name
    registry.WORKLOADS.remove(name)


def _mixed_cases(tiny_cases, poison_name):
    poisoned = benchmark_cases(workloads=[poison_name])
    return list(tiny_cases) + poisoned


def _crash_worker(value):
    """Module-level worker for pool tests: hard-kills on value == 13."""
    if value == 13:
        os._exit(13)
    return value * 2


def _raise_worker(value):
    raise ValueError(f"bad value {value}")


class TestBackends:
    def test_batch_size_serial_is_one(self):
        assert batch_size(100, 1) == 1

    def test_batch_size_targets_four_batches_per_worker(self):
        assert batch_size(64, 4) == 4
        assert batch_size(10, 8) == 1     # fewer units than slots
        assert batch_size(10_000, 8) == 8  # capped

    def test_serial_dispatch_isolates_exceptions(self):
        backend = SerialBackend()
        outcomes = dict(backend.dispatch(_raise_worker, [(1,), (2,)]))
        assert all(isinstance(out, ValueError) for out in outcomes.values())
        assert backend.run_isolated(_crash_worker, 3) == 6

    def test_pool_reused_across_dispatches(self):
        backend = ProcessPoolBackend(2)
        try:
            first = dict(backend.dispatch(_crash_worker, [(1,), (2,)]))
            second = dict(backend.dispatch(_crash_worker, [(3,)]))
            assert first == {0: 2, 1: 4}
            assert second == {0: 6}
            assert backend.starts == 1       # one warm pool, two rounds
            assert backend.dispatches == 2
        finally:
            backend.close()

    def test_pool_rebuilds_after_worker_crash(self):
        backend = ProcessPoolBackend(2)
        try:
            outcomes = dict(backend.dispatch(_crash_worker, [(13,), (1,)]))
            assert any(isinstance(out, BaseException)
                       for out in outcomes.values())
            # The broken pool was discarded; the next dispatch works.
            healthy = dict(backend.dispatch(_crash_worker, [(2,), (3,)]))
            assert healthy == {0: 4, 1: 6}
            assert backend.starts == 2
        finally:
            backend.close()

    def test_pool_broken_between_dispatches_recovers(self):
        # A warm worker dying while *idle* makes the next submit raise
        # BrokenExecutor synchronously; dispatch must absorb that (one
        # rebuild), never raise, and stay usable afterwards.
        import signal
        import time

        backend = ProcessPoolBackend(1)
        try:
            assert dict(backend.dispatch(_crash_worker, [(1,)])) == {0: 2}
            worker_pid = next(iter(backend._pool._processes))
            os.kill(worker_pid, signal.SIGKILL)
            time.sleep(0.3)  # let the executor notice the death
            outcomes = dict(backend.dispatch(_crash_worker, [(2,), (3,)]))
            assert set(outcomes) == {0, 1}  # yielded, not raised
            recovered = dict(backend.dispatch(_crash_worker, [(4,)]))
            assert recovered == {0: 8}
        finally:
            backend.close()

    def test_run_isolated_uses_fresh_process(self):
        backend = ProcessPoolBackend(2)
        try:
            assert backend.run_isolated(os.getpid) != os.getpid()
            # An isolated crash leaves the warm pool untouched.
            with pytest.raises(Exception):
                backend.run_isolated(_crash_worker, 13)
            assert dict(backend.dispatch(_crash_worker, [(1,)])) == {0: 2}
        finally:
            backend.close()

    def test_close_is_idempotent(self):
        backend = ProcessPoolBackend(1)
        list(backend.dispatch(_crash_worker, [(1,)]))
        backend.close()
        backend.close()

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(EvaluationError):
            ProcessPoolBackend(0)


class TestFailureRecords:
    def test_unit_failure_describe(self):
        failure = UnitFailure(key="app/x@4w", slot=3, error_type="ValueError",
                              error="boom", attempts=2)
        text = failure.describe()
        assert "app/x@4w" in text and "ValueError" in text and "2" in text

    def test_sweep_error_names_every_unit(self):
        failures = [
            UnitFailure("a/one@2w", 0, "ValueError", "x", 2),
            UnitFailure("b/two@2w", 1, "RuntimeError", "y", 2),
        ]
        error = SweepError(failures, completed=5, total=7)
        message = str(error)
        assert "a/one@2w" in message and "b/two@2w" in message
        assert "2 of 7" in message and "5 completed" in message
        assert error.failures == failures


class TestSweepFailureIsolation:
    def test_strict_mode_raises_aggregated_sweep_error(
            self, tiny_config, tiny_cases, poison_workload):
        cases = _mixed_cases(tiny_cases, poison_workload)
        with pytest.raises(SweepError) as excinfo:
            run_cases(tiny_config, cases, num_workers=2, retries=0)
        assert len(excinfo.value.failures) == 1
        assert poison_workload in excinfo.value.failures[0].key

    def test_grid_with_one_failure_completes_rest_and_caches(
            self, tmp_path, tiny_config, tiny_cases, poison_workload):
        # The acceptance scenario: one poisoned unit in a grid; every
        # other unit completes, lands in the cache, and exactly one
        # UnitFailure is reported.
        cases = _mixed_cases(tiny_cases, poison_workload)
        units = [CaseUnit(tiny_config, case, workers)
                 for workers in (2, 4) for case in cases]
        cache = ResultCache(tmp_path)
        failures = []
        runs = run_case_grid(units, jobs=2, cache=cache, keep_going=True,
                             retries=1, failures=failures)
        assert len(failures) == 2  # the poisoned case at both core counts
        assert len(runs) == len(units)  # slot-aligned, failures are None
        completed = [run for run in runs if run is not None]
        assert len(completed) == len(units) - 2
        # Zip-safety: every non-None slot matches its unit.
        for unit, run in zip(units, runs):
            if run is not None:
                assert run.case == unit.case
        # Completed units were cached: a rerun is all hits + same failure.
        rerun_failures = []
        rerun = run_case_grid(units, jobs=1, cache=cache, keep_going=True,
                              retries=0, failures=rerun_failures)
        assert cache.stats.hits >= len(completed)
        assert [r.case.key for r in rerun if r is not None] == \
            [r.case.key for r in completed]
        assert len(rerun_failures) == 2

    def test_exactly_one_unit_failure_for_one_poisoned_unit(
            self, tmp_path, tiny_config, tiny_cases, poison_workload):
        cases = _mixed_cases(tiny_cases, poison_workload)
        units = [CaseUnit(tiny_config, case, 2) for case in cases]
        cache = ResultCache(tmp_path)
        failures = []
        runs = run_case_grid(units, jobs=2, cache=cache, keep_going=True,
                             failures=failures)
        assert len(failures) == 1
        assert failures[0].key == f"{poison_workload}/default@2w"
        assert sum(run is not None for run in runs) == len(cases) - 1

    def test_failed_unit_is_retried(self, tmp_path, tiny_config, tiny_cases,
                                    poison_workload):
        cases = _mixed_cases(tiny_cases, poison_workload)
        failures = []
        run_cases(tiny_config, cases, num_workers=2, keep_going=True,
                  retries=1, failures=failures)
        assert failures[0].attempts == 2  # first attempt + one retry
        failures = []
        run_cases(tiny_config, cases, num_workers=2, keep_going=True,
                  retries=0, failures=failures)
        assert failures[0].attempts == 1

    def test_transient_failure_recovers_on_retry(self, tmp_path, tiny_config,
                                                 tiny_cases):
        # A builder that fails once then succeeds: the retry (in a fresh
        # worker for pools; in-process for serial) must land the unit.
        name = "flaky-unit-test"
        flag = tmp_path / "first-attempt"

        def flaky(**params):
            if not flag.exists():
                flag.write_text("tried", encoding="utf-8")
                raise RuntimeError("transient failure")
            from tests.helpers import make_chain_program
            return make_chain_program(num_tasks=4, payload=50)

        register_workload(name, description="fails once (test)")(flaky)
        try:
            cases = benchmark_cases(workloads=[name])
            failures = []
            runs = run_cases(tiny_config, cases, num_workers=2, retries=1,
                             failures=failures)
            assert failures == []
            assert runs[0].results["serial"].elapsed_cycles > 0
        finally:
            registry.WORKLOADS.remove(name)

    def test_rejects_negative_retries(self, tiny_config, tiny_cases):
        with pytest.raises(EvaluationError):
            run_cases(tiny_config, tiny_cases, num_workers=2, retries=-1)

    def test_truncated_batch_outcome_becomes_failure(self, tiny_config,
                                                     tiny_cases):
        # A batch returning fewer outcomes than tasks must not silently
        # shorten the run list: the missing unit is treated as failed
        # (and recovered by the retry here).
        class TruncatingBackend(SerialBackend):
            def dispatch(self, fn, batches):
                for index, batch in enumerate(batches):
                    yield index, fn(*batch)[:-1]  # drop the last outcome

        failures = []
        runs = run_cases(tiny_config, tiny_cases, num_workers=2,
                         executor=TruncatingBackend(), retries=1,
                         failures=failures)
        assert failures == []
        assert [run.case.key for run in runs] == \
            [case.key for case in tiny_cases]

    def test_unfilled_slot_raises_naming_units(self, tiny_config,
                                               tiny_cases):
        # A backend that silently drops a whole batch must surface as an
        # EvaluationError naming the units, not a shortened run list.
        import re

        class LossyBackend(SerialBackend):
            def dispatch(self, fn, batches):
                for index, batch in list(enumerate(batches))[:-1]:
                    yield index, fn(*batch)

        with pytest.raises(EvaluationError,
                           match=re.escape(tiny_cases[-1].key)):
            run_cases(tiny_config, tiny_cases, num_workers=2,
                      executor=LossyBackend())

    def test_progress_finishes_and_marks_failures(
            self, tiny_config, tiny_cases, poison_workload):
        events = []

        class RecordingProgress(Progress):
            def __init__(self):
                super().__init__(stream=None)

            def start(self, label, total):
                events.append(("start", total))

            def advance(self, description, cached=False, failed=False):
                events.append(("failed" if failed else "done", description))

            def finish(self):
                events.append(("finish",))

        cases = _mixed_cases(tiny_cases, poison_workload)
        with pytest.raises(SweepError):
            run_cases(tiny_config, cases, num_workers=2, retries=0,
                      progress=RecordingProgress())
        # finish() ran although the sweep raised, and the poisoned unit
        # was marked failed rather than dropped.
        assert events[-1] == ("finish",)
        assert ("failed", f"{poison_workload}/default") in events


class TestPluginPayloadGuards:
    def test_runtime_class_with_none_module_ships_by_reference(
            self, tiny_config, tiny_cases):
        from tests.helpers import PluginRuntime

        class NoModuleRuntime(PluginRuntime):
            pass

        NoModuleRuntime.__module__ = None
        name = "no-module-rt"
        register_runtime(name, rank=7)(NoModuleRuntime)
        try:
            unit = CaseUnit(tiny_config, tiny_cases[0], 2, ("serial", name))
            _builder, plugin_runtimes, _files, _scen = _plugin_payload(unit)
            assert plugin_runtimes == {name: (NoModuleRuntime, 7)}
        finally:
            registry.RUNTIMES.remove(name)


class TestCacheMaintenance:
    def test_clear_sweeps_stale_tmp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"x": 1})
        # A writer killed between NamedTemporaryFile and os.replace
        # leaves a .tmp sibling behind; an in-flight (fresh) temporary of
        # a concurrent writer must survive the sweep.
        parent = cache.path_for("ab" * 32).parent
        stale = parent / ".abab1234-dead.tmp"
        stale.write_text("{", encoding="utf-8")
        os.utime(stale, (1, 1))  # killed long ago
        fresh = parent / ".abab1234-live.tmp"
        fresh.write_text("{", encoding="utf-8")
        assert cache.clear() == 1  # temporaries don't count as entries
        assert not stale.exists()
        assert fresh.exists()
        assert len(cache) == 0

    def test_size_bytes_tolerates_concurrent_deletion(self, tmp_path,
                                                      monkeypatch):
        cache = ResultCache(tmp_path)
        cache.put("cd" * 32, {"x": 1})
        real = cache.path_for("cd" * 32)
        ghost = real.parent / "ghost.json"

        monkeypatch.setattr(ResultCache, "entries",
                            lambda self: iter([real, ghost]))
        assert cache.size_bytes() == real.stat().st_size

    def test_clear_tolerates_concurrent_deletion(self, tmp_path,
                                                 monkeypatch):
        cache = ResultCache(tmp_path)
        cache.put("ef" * 32, {"x": 1})
        real = cache.path_for("ef" * 32)
        ghost = real.parent / "ghost.json"
        monkeypatch.setattr(ResultCache, "entries",
                            lambda self: iter([ghost, real]))
        assert cache.clear() == 1


class TestEngineExecutorOwnership:
    def test_warm_pool_reused_across_sweep_phases(self, tiny_config,
                                                  tiny_cases):
        with ExperimentEngine(config=tiny_config, jobs=2) as engine:
            engine.run("figure9", cases=tiny_cases, num_workers=2)
            engine.run("figure9", cases=tiny_cases, num_workers=4)
            backend = engine.executor
            assert isinstance(backend, ProcessPoolBackend)
            assert backend.starts == 1
            assert backend.dispatches == 2

    def test_close_is_idempotent_and_backend_rebuilds(self, tiny_config):
        engine = ExperimentEngine(config=tiny_config, jobs=2)
        first = engine.executor
        engine.close()
        engine.close()
        assert engine.executor is not first

    def test_serial_engine_uses_serial_backend(self, tiny_config):
        with ExperimentEngine(config=tiny_config, jobs=1) as engine:
            assert isinstance(engine.executor, SerialBackend)

    def test_engine_rejects_negative_retries(self, tiny_config):
        with pytest.raises(EvaluationError):
            ExperimentEngine(config=tiny_config, retries=-1)

    def test_keep_going_engine_collects_failures(
            self, tiny_config, tiny_cases, poison_workload):
        cases = _mixed_cases(tiny_cases, poison_workload)
        with ExperimentEngine(config=tiny_config, jobs=2,
                              keep_going=True, retries=0) as engine:
            runs = engine.run("figure9", cases=cases, num_workers=2)
            assert len(runs) == len(cases) - 1
            assert len(engine.unit_failures) == 1
            assert poison_workload in engine.unit_failures[0].key

    def test_strict_engine_raises_sweep_error(
            self, tiny_config, tiny_cases, poison_workload):
        cases = _mixed_cases(tiny_cases, poison_workload)
        with ExperimentEngine(config=tiny_config, retries=0) as engine:
            with pytest.raises(SweepError):
                engine.run("figure9", cases=cases, num_workers=2)

    def test_memo_served_partial_sweep_re_reports_failures(
            self, tiny_config, tiny_cases, poison_workload):
        # A partial result served from the sweep memo must re-report its
        # failures: a caller of the second run would otherwise mistake
        # the gap-ridden result for a complete one.
        cases = _mixed_cases(tiny_cases, poison_workload)
        with ExperimentEngine(config=tiny_config, keep_going=True,
                              retries=0) as engine:
            engine.run("figure9", cases=cases, num_workers=2)
            after_first = len(engine.unit_failures)
            runs = engine.run("figure9", cases=cases, num_workers=2)
            assert len(runs) == len(cases) - 1
            assert len(engine.unit_failures) > after_first

    def test_partial_scaling_curves_never_cached(
            self, tmp_path, tiny_config, tiny_cases, poison_workload):
        # Even when every column is memo-served (second run), a partial
        # curve set must not land under the full-grid cache key: a fresh
        # engine must re-attempt the poisoned units, not be served gaps.
        cases = _mixed_cases(tiny_cases[:1], poison_workload)
        with ExperimentEngine(config=tiny_config, cache_dir=tmp_path,
                              keep_going=True, retries=0) as engine:
            engine.run("scaling_curves", cases=cases, core_counts=[1, 2])
            engine.run("scaling_curves", cases=cases, core_counts=[1, 2])
        with ExperimentEngine(config=tiny_config, cache_dir=tmp_path,
                              keep_going=True, retries=0) as fresh:
            fresh.run("scaling_curves", cases=cases, core_counts=[1, 2])
            assert fresh.unit_failures  # re-attempted, not served gaps

    def test_keep_going_scaling_aligns_surviving_cases(
            self, tiny_config, tiny_cases, poison_workload):
        cases = _mixed_cases(tiny_cases[:1], poison_workload)
        with ExperimentEngine(config=tiny_config, keep_going=True,
                              retries=0) as engine:
            curves = engine.run("scaling_curves", cases=cases,
                                core_counts=[1, 2])
            surviving = {curve.case_key for curve in curves}
            assert surviving == {tiny_cases[0].key}
            assert engine.unit_failures  # the poisoned column was recorded


class TestScalingAlignment:
    def test_align_drops_cases_missing_anywhere(self, tiny_config,
                                                tiny_cases):
        from repro.eval.experiments import run_benchmark_case

        full = [run_benchmark_case(case, tiny_config, 1)
                for case in tiny_cases]
        aligned, dropped = align_runs_by_cores({1: full, 2: full[:1]})
        assert dropped == [tiny_cases[1].key]
        assert [run.case.key for run in aligned[1]] == [tiny_cases[0].key]
        assert [run.case.key for run in aligned[2]] == [tiny_cases[0].key]

    def test_align_empty_input(self):
        assert align_runs_by_cores({}) == ({}, [])


class TestStudyFailureKnobs:
    def test_keep_going_study_reports_failures(self, tiny_config,
                                               poison_workload):
        from repro.api import Study
        from repro.harness.artifacts import decode, encode

        result = (Study(tiny_config).workloads("jacobi", poison_workload)
                  .quick().scale(0.2).keep_going().retries(0).run())
        assert len(result.failures) == 1
        assert poison_workload in result.failures[0].key
        assert result.runs()  # the healthy workload completed
        clone = decode(encode(result))
        assert clone == result

    def test_strict_study_raises(self, tiny_config, poison_workload):
        from repro.api import Study

        with pytest.raises(SweepError):
            (Study(tiny_config).workloads("jacobi", poison_workload)
             .quick().scale(0.2).retries(0).run())

    def test_retries_validates(self):
        from repro.api import Study

        with pytest.raises(EvaluationError):
            Study().retries(-1)


class TestCliFailureHandling:
    def test_keep_going_exits_zero_with_failure_report(self, capsys):
        code = cli_main(["run", "figure9", "--plugin", POISON_PLUGIN,
                         "--workload", "jacobi,poison", "--quick",
                         "--scale", "0.2", "--no-cache", "--quiet",
                         "--keep-going", "--retries", "0",
                         "--format", "json"])
        captured = capsys.readouterr()
        assert code == 0
        assert "poison/default" in captured.err
        assert "1 unit(s) failed" in captured.err
        payload = json.loads(captured.out)
        # N-1 results: the sweep rendered, minus the poisoned unit.
        from repro.harness.artifacts import decode
        runs = decode(payload["figure9"])
        assert runs
        assert all(run.case.benchmark != "poison" for run in runs)

    def test_strict_mode_exits_nonzero_naming_unit(self, capsys):
        code = cli_main(["run", "figure9", "--plugin", POISON_PLUGIN,
                         "--workload", "jacobi,poison", "--quick",
                         "--scale", "0.2", "--no-cache", "--quiet",
                         "--retries", "0"])
        captured = capsys.readouterr()
        assert code == 1
        assert "poison/default" in captured.err


class TestBenchPoolMeasurement:
    def test_entry_records_pool_overheads(self):
        from repro.harness.bench import measure_pool

        entry = measure_pool(max_workers=2, dispatches=2)
        assert entry["workers"] == 2
        assert entry["warmup_seconds"] > 0
        assert entry["dispatch_per_round_seconds"] > 0

    def test_run_engine_bench_includes_pool(self):
        from repro.harness.bench import run_engine_bench

        entry = run_engine_bench(num_events=10_000, include_case=False,
                                 repeats=1, pool_workers=2)
        assert "pool" in entry
        assert entry["pool"]["workers"] == 2
        skipped = run_engine_bench(num_events=10_000, include_case=False,
                                   repeats=1, include_pool=False)
        assert "pool" not in skipped
