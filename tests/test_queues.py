"""Unit tests for the decoupled (ready/valid) queue models."""

from __future__ import annotations

import pytest

from repro.common.errors import QueueError
from repro.sim.engine import Delay, Engine, Get, Put
from repro.sim.queues import DecoupledQueue, ProtocolCrossingQueue


def test_try_put_and_try_get_fifo_order():
    engine = Engine()
    queue = DecoupledQueue(engine, capacity=3)
    assert queue.try_put("a")
    assert queue.try_put("b")
    assert queue.try_put("c")
    assert not queue.try_put("overflow")
    assert queue.try_get() == "a"
    assert queue.try_get() == "b"
    assert queue.try_get() == "c"
    assert queue.try_get() is None


def test_ready_valid_flags():
    engine = Engine()
    queue = DecoupledQueue(engine, capacity=1)
    assert queue.ready and not queue.valid
    queue.try_put(1)
    assert not queue.ready and queue.valid
    assert queue.full and not queue.empty


def test_capacity_must_be_positive():
    engine = Engine()
    with pytest.raises(QueueError):
        DecoupledQueue(engine, capacity=0)


def test_peek_does_not_pop():
    engine = Engine()
    queue = DecoupledQueue(engine, capacity=2)
    queue.try_put("x")
    assert queue.peek() == "x"
    assert len(queue) == 1
    assert queue.try_get() == "x"


def test_peek_empty_raises():
    engine = Engine()
    queue = DecoupledQueue(engine, capacity=2)
    with pytest.raises(QueueError):
        queue.peek()


def test_blocking_put_waits_for_space():
    engine = Engine()
    queue = DecoupledQueue(engine, capacity=1)
    timeline = []

    def producer():
        yield Put(queue, "first")
        timeline.append(("first_put", engine.now))
        yield Put(queue, "second")
        timeline.append(("second_put", engine.now))

    def consumer():
        yield Delay(10)
        item = yield Get(queue)
        timeline.append((item, engine.now))
        item = yield Get(queue)
        timeline.append((item, engine.now))

    engine.spawn(producer())
    engine.spawn(consumer())
    engine.run()
    # The second put can only complete once the consumer drains the first.
    assert ("first_put", 0) in timeline
    assert ("second_put", 10) in timeline


def test_blocking_get_waits_for_items():
    engine = Engine()
    queue = DecoupledQueue(engine, capacity=4)
    got = []

    def consumer():
        item = yield Get(queue)
        got.append((item, engine.now))

    def producer():
        yield Delay(30)
        yield Put(queue, "late")

    engine.spawn(consumer())
    engine.spawn(producer())
    engine.run()
    assert got == [("late", 30)]


def test_multiple_getters_served_in_order():
    engine = Engine()
    queue = DecoupledQueue(engine, capacity=4)
    results = []

    def consumer(name):
        item = yield Get(queue)
        results.append((name, item))

    def producer():
        yield Delay(5)
        yield Put(queue, 1)
        yield Put(queue, 2)

    engine.spawn(consumer("first"))
    engine.spawn(consumer("second"))
    engine.spawn(producer())
    engine.run()
    assert results == [("first", 1), ("second", 2)]


def test_counters_and_watermark():
    engine = Engine()
    queue = DecoupledQueue(engine, capacity=4)
    for value in range(3):
        queue.try_put(value)
    queue.try_get()
    assert queue.total_enqueued == 3
    assert queue.total_dequeued == 1
    assert queue.high_watermark == 3
    assert queue.snapshot() == [1, 2]


def test_enqueue_and_dequeue_observers():
    engine = Engine()
    queue = DecoupledQueue(engine, capacity=4)
    events = []
    queue.subscribe_enqueue(lambda: events.append("enq"))
    queue.subscribe_dequeue(lambda: events.append("deq"))
    queue.try_put(1)
    queue.try_get()
    assert events == ["enq", "deq"]


def test_unsubscribe_observers():
    engine = Engine()
    queue = DecoupledQueue(engine, capacity=4)
    events = []

    def observer():
        events.append("enq")

    queue.subscribe_enqueue(observer)
    queue.try_put(1)
    queue.unsubscribe_enqueue(observer)
    queue.try_put(2)
    assert events == ["enq"]
    # Unsubscribing twice is a harmless no-op.
    queue.unsubscribe_enqueue(observer)


def test_protocol_crossing_delays_visibility():
    engine = Engine()
    crossing = ProtocolCrossingQueue(engine, capacity=4, delay=3)
    assert crossing.try_put("packet")
    assert crossing.empty  # not yet visible
    engine.schedule_callback(10, lambda: None)

    def prober():
        yield Delay(3)
        return crossing.try_get()

    process = engine.spawn(prober())
    engine.run()
    assert process.result == "packet"


def test_protocol_crossing_counts_in_flight_towards_capacity():
    engine = Engine()
    crossing = ProtocolCrossingQueue(engine, capacity=2, delay=5)
    assert crossing.try_put(1)
    assert crossing.try_put(2)
    assert crossing.full
    assert not crossing.try_put(3)


def test_protocol_crossing_zero_delay_behaves_like_plain_queue():
    engine = Engine()
    crossing = ProtocolCrossingQueue(engine, capacity=2, delay=0)
    crossing.try_put("x")
    assert crossing.try_get() == "x"


def test_protocol_crossing_blocking_put_and_get():
    engine = Engine()
    crossing = ProtocolCrossingQueue(engine, capacity=1, delay=2)
    collected = []

    def producer():
        yield Put(crossing, "a")
        yield Put(crossing, "b")

    def consumer():
        for _ in range(2):
            item = yield Get(crossing)
            collected.append((item, engine.now))

    engine.spawn(producer())
    engine.spawn(consumer())
    engine.run()
    assert [item for item, _ in collected] == ["a", "b"]
    # Each item needed at least the crossing delay to become visible.
    assert collected[0][1] >= 2
