"""Unit tests for the arbiter models used by Picos Manager."""

from __future__ import annotations

import pytest

from repro.common.errors import ProtocolError
from repro.sim.arbiters import GuidedArbiter, InOrderArbiter, RoundRobinArbiter
from repro.sim.engine import Delay, Engine, Get, Put, Wait
from repro.sim.queues import DecoupledQueue


def _drain(queue):
    items = []
    while queue.valid:
        items.append(queue.try_get())
    return items


class TestRoundRobinArbiter:
    def test_merges_inputs_round_robin(self):
        engine = Engine()
        inputs = [DecoupledQueue(engine, 8, name=f"in{i}") for i in range(3)]
        output = DecoupledQueue(engine, 16, name="out")
        RoundRobinArbiter(engine, inputs, output)
        for index, queue in enumerate(inputs):
            queue.try_put(f"a{index}")
            queue.try_put(f"b{index}")
        engine.run()
        merged = _drain(output)
        assert sorted(merged) == sorted(["a0", "a1", "a2", "b0", "b1", "b2"])
        # Rotating priority: the first three grants cover all three inputs.
        assert {item[1] for item in merged[:3]} == {"0", "1", "2"}

    def test_idle_when_inputs_empty(self):
        engine = Engine()
        inputs = [DecoupledQueue(engine, 4)]
        output = DecoupledQueue(engine, 4)
        arbiter = RoundRobinArbiter(engine, inputs, output)
        engine.run()
        assert arbiter.grants == 0
        assert engine.now == 0

    def test_respects_output_backpressure(self):
        engine = Engine()
        inputs = [DecoupledQueue(engine, 8)]
        output = DecoupledQueue(engine, 1)
        arbiter = RoundRobinArbiter(engine, inputs, output)
        inputs[0].try_put(1)
        inputs[0].try_put(2)
        engine.run()
        assert len(output) == 1
        assert arbiter.grants == 1
        # Draining the output lets the arbiter move the next item.
        output.try_get()
        engine.run()
        assert len(output) == 1
        assert arbiter.grants == 2

    def test_requires_inputs_and_positive_grant_cycles(self):
        engine = Engine()
        output = DecoupledQueue(engine, 4)
        with pytest.raises(ProtocolError):
            RoundRobinArbiter(engine, [], output)
        with pytest.raises(ProtocolError):
            RoundRobinArbiter(engine, [DecoupledQueue(engine, 4)], output,
                              cycles_per_grant=0)


class TestInOrderArbiter:
    def test_serves_requests_in_arrival_order(self):
        engine = Engine()
        requests = DecoupledQueue(engine, 8)
        supply = DecoupledQueue(engine, 8)
        served = []

        def serve(token):
            item = yield Get(supply)
            served.append((token, item))

        InOrderArbiter(engine, requests, serve)
        # Requests arrive before any supply exists.
        requests.try_put("core2")
        requests.try_put("core0")
        requests.try_put("core1")

        def producer():
            yield Delay(10)
            for value in ("x", "y", "z"):
                yield Put(supply, value)

        engine.spawn(producer())
        engine.run()
        assert served == [("core2", "x"), ("core0", "y"), ("core1", "z")]

    def test_later_request_never_overtakes_earlier_one(self):
        engine = Engine()
        requests = DecoupledQueue(engine, 8)
        supply = DecoupledQueue(engine, 8)
        completion_times = {}

        def serve(token):
            item = yield Get(supply)
            completion_times[token] = engine.now
            del item

        InOrderArbiter(engine, requests, serve)
        requests.try_put("first")
        requests.try_put("second")
        supply.try_put("only-later")

        def late_producer():
            yield Delay(50)
            yield Put(supply, "second-item")

        engine.spawn(late_producer())
        engine.run()
        assert completion_times["first"] < completion_times["second"]
        assert completion_times["second"] >= 50


class TestGuidedArbiter:
    def test_exclusive_grant_for_whole_sequence(self):
        engine = Engine()
        arbiter = GuidedArbiter(engine, num_requesters=2)
        grant_a = arbiter.request(0, beats=3)
        grant_b = arbiter.request(1, beats=2)
        assert grant_a.triggered
        assert not grant_b.triggered
        arbiter.transfer_beat(0)
        arbiter.transfer_beat(0)
        assert not grant_b.triggered
        arbiter.transfer_beat(0)
        # Releasing after the last beat hands the grant to the next requester.
        assert grant_b.triggered
        assert arbiter.current_owner == 1
        assert arbiter.sequences_completed == 1

    def test_transfer_without_ownership_raises(self):
        engine = Engine()
        arbiter = GuidedArbiter(engine, num_requesters=2)
        arbiter.request(0, beats=1)
        with pytest.raises(ProtocolError):
            arbiter.transfer_beat(1)

    def test_invalid_requester_or_beats_rejected(self):
        engine = Engine()
        arbiter = GuidedArbiter(engine, num_requesters=2)
        with pytest.raises(ProtocolError):
            arbiter.request(5, beats=1)
        with pytest.raises(ProtocolError):
            arbiter.request(0, beats=0)

    def test_pending_requests_counter(self):
        engine = Engine()
        arbiter = GuidedArbiter(engine, num_requesters=3)
        arbiter.request(0, beats=1)
        arbiter.request(1, beats=1)
        arbiter.request(2, beats=1)
        assert arbiter.busy
        assert arbiter.pending_requests == 2

    def test_grants_usable_from_processes(self):
        engine = Engine()
        arbiter = GuidedArbiter(engine, num_requesters=2)
        order = []

        def requester(core, beats, delay):
            yield Delay(delay)
            grant = arbiter.request(core, beats)
            yield Wait(grant)
            for _ in range(beats):
                yield Delay(1)
                arbiter.transfer_beat(core)
            order.append((core, engine.now))

        engine.spawn(requester(0, 3, 0))
        engine.spawn(requester(1, 2, 1))
        engine.run()
        assert [core for core, _ in order] == [0, 1]
        # Core 1 could only start after core 0 finished all three beats.
        assert order[1][1] >= order[0][1] + 2
