"""Documentation health checks: link integrity and import smoke.

These back the CI docs job: every relative link in ``docs/`` and the
README must resolve to a real file, and every ``repro.*`` module must be
importable (the same property ``python -m pydoc`` relies on).
"""

from __future__ import annotations

import importlib
import pkgutil
import re
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown inline links: [text](target); images share the syntax.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _markdown_files():
    docs = sorted((REPO_ROOT / "docs").glob("*.md"))
    assert docs, "docs/ must contain markdown files"
    return [REPO_ROOT / "README.md"] + docs


def _relative_links(path: Path):
    for target in _LINK.findall(path.read_text(encoding="utf-8")):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target.split("#", 1)[0]


@pytest.mark.parametrize("markdown", _markdown_files(),
                         ids=lambda p: str(p.relative_to(REPO_ROOT)))
def test_markdown_links_resolve(markdown):
    for target in _relative_links(markdown):
        if not target:
            continue  # pure intra-document anchor
        resolved = (markdown.parent / target).resolve()
        assert resolved.exists(), (
            f"{markdown.relative_to(REPO_ROOT)} links to missing {target!r}"
        )


def test_docs_expected_pages_exist():
    assert (REPO_ROOT / "docs" / "architecture.md").is_file()
    assert (REPO_ROOT / "docs" / "reproducing.md").is_file()


def _all_repro_modules():
    names = ["repro"]
    for module in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(module.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_repro_modules())
def test_every_module_imports(module_name):
    importlib.import_module(module_name)


def test_public_harness_api_is_documented():
    """Every public name and module of the harness carries a docstring."""
    import inspect

    import repro.harness as harness

    modules = [
        importlib.import_module(f"repro.harness.{name}")
        for name in ("artifacts", "bench", "cache", "cli", "engine",
                     "executor", "hashing", "progress", "runner", "sweep",
                     "telemetry")
    ]
    for module in modules:
        assert module.__doc__, f"{module.__name__} lacks a module docstring"
    for name in harness.__all__:
        obj = getattr(harness, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"repro.harness.{name} lacks a docstring"
