"""Tests for the evaluation harness (MTT math, overheads, experiments)."""

from __future__ import annotations

import pytest

from repro.common.config import MachineConfig, SimConfig
from repro.common.errors import EvaluationError
from repro.eval import (
    PAPER_FIGURE7_CYCLES,
    OverheadMeasurement,
    ResourceModel,
    benchmark_cases,
    benchmarks_report,
    bound_curve,
    bounds_report,
    default_task_sizes,
    figure6_mtt_bounds,
    figure8_granularity,
    figure9_benchmarks,
    figure10_bounds_vs_measured,
    format_table,
    headline_report,
    headline_summary,
    maximum_task_throughput,
    measure_lifetime_overhead,
    overhead_report,
    resource_table,
    resources_report,
    rows_to_csv,
    saturation_task_size,
    speedup_bound,
    table2_resources,
)


class TestMttMath:
    def test_mtt_is_reciprocal_of_overhead(self):
        assert maximum_task_throughput(200) == pytest.approx(0.005)
        with pytest.raises(EvaluationError):
            maximum_task_throughput(0)

    def test_equation1_capped_at_core_count(self):
        # MS(Lo, t) = t / Lo, capped at N.
        assert speedup_bound(1000, 500, 8) == pytest.approx(2.0)
        assert speedup_bound(100_000, 500, 8) == 8.0
        with pytest.raises(EvaluationError):
            speedup_bound(-1, 500, 8)

    def test_saturation_point(self):
        assert saturation_task_size(329, 8) == pytest.approx(2632)

    def test_bound_curve_is_monotonic(self):
        curve = bound_curve(300, 8, default_task_sizes())
        speedups = [point.max_speedup for point in curve]
        assert speedups == sorted(speedups)
        assert speedups[-1] == 8.0

    def test_paper_figure6_shape(self):
        """At ~1000 cycles Phentos is near 3x while the others are <1x;
        at ~10000 cycles Phentos has saturated and the others are ~<1x."""
        phentos_lo = PAPER_FIGURE7_CYCLES["phentos"]["Task-Chain 1 dep"]
        nanos_rv_lo = PAPER_FIGURE7_CYCLES["nanos-rv"]["Task-Chain 1 dep"]
        assert 2.0 < speedup_bound(1000, phentos_lo, 8) < 4.0
        assert speedup_bound(1000, nanos_rv_lo, 8) < 0.1
        assert speedup_bound(10_000, phentos_lo, 8) == 8.0
        assert speedup_bound(10_000, nanos_rv_lo, 8) < 1.0

    def test_default_task_sizes_span_decades(self):
        sizes = default_task_sizes(2, 5, 4)
        assert sizes[0] == pytest.approx(100.0)
        assert sizes[-1] == pytest.approx(100_000.0)
        assert all(b > a for a, b in zip(sizes, sizes[1:]))


class TestOverheadMeasurement:
    def test_phentos_overhead_band(self, config):
        overhead = measure_lifetime_overhead("phentos", "task-chain", 1,
                                             num_tasks=40, config=config)
        assert 150 < overhead < 600

    def test_nanos_rv_overhead_band(self, config):
        overhead = measure_lifetime_overhead("nanos-rv", "task-free", 1,
                                             num_tasks=30, config=config)
        assert 8_000 < overhead < 18_000

    def test_unknown_platform_rejected(self):
        with pytest.raises(EvaluationError):
            measure_lifetime_overhead("not-a-runtime")

    def test_measurement_ratio_helper(self):
        measurement = OverheadMeasurement("phentos", "Task-Free 1 dep",
                                          cycles_per_task=200,
                                          paper_cycles_per_task=185)
        assert measurement.ratio_to_paper == pytest.approx(200 / 185)
        missing = OverheadMeasurement("x", "y", 100, None)
        assert missing.ratio_to_paper is None


class TestResourceModel:
    def test_table2_structure(self):
        entries = table2_resources()
        modules = [entry.module for entry in entries]
        assert modules == ["top", "Core", "fpuOpt", "dcache", "icache",
                           "SSystem"]
        top = entries[0]
        assert top.fraction_of_top == pytest.approx(1.0)

    def test_scheduling_subsystem_is_under_two_percent(self):
        model = ResourceModel()
        assert model.scheduling_fraction < 0.02
        ssystem = next(e for e in model.table() if e.module == "SSystem")
        assert ssystem.cells < 10_000

    def test_cells_scale_with_core_count(self):
        eight = ResourceModel(MachineConfig(num_cores=8))
        four = ResourceModel(MachineConfig(num_cores=4))
        assert eight.top_cells > four.top_cells
        # The scheduling subsystem stays a small fraction in both cases
        # (slightly larger relatively on the smaller SoC, since Picos itself
        # does not shrink with the core count).
        assert eight.scheduling_fraction < 0.02
        assert four.scheduling_fraction < 0.04

    def test_core_breakdown_consistent(self):
        model = ResourceModel()
        assert model.core_cells == (model.CORE_LOGIC_CELLS + model.FPU_CELLS
                                    + model.DCACHE_CELLS + model.ICACHE_CELLS)
        assert resource_table()[1].cells == model.core_cells


class TestBenchmarkCases:
    def test_full_sweep_has_37_inputs(self):
        cases = benchmark_cases()
        assert len(cases) == 37
        by_benchmark = {}
        for case in cases:
            by_benchmark.setdefault(case.benchmark, []).append(case)
        assert len(by_benchmark["blackscholes"]) == 12
        assert len(by_benchmark["jacobi"]) == 3
        assert len(by_benchmark["sparselu"]) == 10
        assert len(by_benchmark["stream-barr"]) == 6
        assert len(by_benchmark["stream-deps"]) == 6

    def test_quick_sweep_is_a_subset(self):
        quick = benchmark_cases(quick=True)
        assert 0 < len(quick) < 37

    def test_cases_build_valid_programs(self):
        for case in benchmark_cases(quick=True, scale=0.25):
            program = case.build()
            assert program.num_tasks > 0

    def test_scale_must_be_positive(self):
        with pytest.raises(EvaluationError):
            benchmark_cases(scale=0)


class TestExperimentRunners:
    @pytest.fixture(scope="class")
    def quick_runs(self):
        config = SimConfig().with_cores(4)
        cases = benchmark_cases(quick=True, scale=0.2)[:4]
        return figure9_benchmarks(config, cases=cases, num_workers=4)

    def test_figure9_runs_every_runtime(self, quick_runs):
        assert quick_runs
        for run in quick_runs:
            assert set(run.results) == {"serial", "nanos-sw", "nanos-rv",
                                        "phentos"}
            assert run.speedup_vs_serial("phentos") > 0

    def test_figure8_points_derived_from_runs(self, quick_runs):
        points = figure8_granularity(quick_runs)
        assert len(points) == 3 * len(quick_runs)
        for point in points:
            assert point.task_size_cycles > 0
            assert point.speedup_vs_serial > 0

    def test_figure10_bounds_mostly_hold(self, quick_runs):
        config = SimConfig().with_cores(4)
        bounds = figure6_mtt_bounds(config, task_sizes=[1e2, 1e3, 1e4, 1e5, 1e7],
                                    num_tasks=40)
        comparisons = figure10_bounds_vs_measured(quick_runs, config, bounds)
        for platform in ("phentos", "nanos-rv"):
            comparison = comparisons[platform]
            # Nothing beats the machine and at most one scheduling-bound
            # point sits above the serialised analytic bound (pipelining).
            assert all(speedup <= 4.0 for _, speedup in comparison.measured)
            assert len(comparison.violations(tolerance=1.3)) <= 1

    def test_headline_summary_statistics(self, quick_runs):
        summary = headline_summary(quick_runs)
        assert summary.num_cases == len(quick_runs)
        assert summary.geomean_phentos_vs_sw > summary.geomean_nanos_rv_vs_sw
        assert summary.geomean_nanos_rv_vs_sw > 1.0
        with pytest.raises(EvaluationError):
            headline_summary([])

    def test_figure6_orders_platforms_by_overhead(self, config):
        curves = figure6_mtt_bounds(config, task_sizes=[2_000.0], num_tasks=30)
        at_2k = {name: curve[0].max_speedup for name, curve in curves.items()}
        assert at_2k["phentos"] > at_2k["nanos-rv"]
        assert at_2k["phentos"] > at_2k["nanos-sw"]
        assert at_2k["nanos-rv"] >= at_2k["nanos-sw"]


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "333" in lines[3]

    def test_rows_to_csv(self):
        csv_text = rows_to_csv(["x", "y"], [[1, 2]])
        assert csv_text.splitlines() == ["x,y", "1,2"]

    def test_reports_render(self, config):
        entries = table2_resources(config)
        assert "SSystem" in resources_report(entries)
        curves = {"phentos": bound_curve(300, 8, [1e2, 1e3])}
        assert "phentos" in bounds_report(curves, sample_sizes=(1e2, 1e3))
        measurement = OverheadMeasurement("phentos", "Task-Free 1 dep", 200, 185)
        assert "phentos" in overhead_report([measurement])
