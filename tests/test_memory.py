"""Tests for the memory substrate: addresses, MESI coherence, shared vars."""

from __future__ import annotations

import pytest

from repro.common.config import CACHE_LINE_BYTES, MemoryCosts
from repro.common.errors import MemoryModelError
from repro.memory.address import (
    AddressAllocator,
    MemoryRegion,
    line_base,
    line_of,
    span_lines,
)
from repro.memory.hierarchy import MemorySystem
from repro.memory.mesi import AccessType, CoherenceDirectory, LineState


class TestAddressHelpers:
    def test_line_of_and_base(self):
        assert line_of(0) == 0
        assert line_of(63) == 0
        assert line_of(64) == 1
        assert line_base(130) == 128

    def test_negative_address_rejected(self):
        with pytest.raises(MemoryModelError):
            line_of(-1)

    def test_span_lines_crossing_boundary(self):
        assert span_lines(60, 8) == [0, 1]
        assert span_lines(0, 64) == [0]
        assert span_lines(64, 128) == [1, 2]

    def test_span_requires_positive_size(self):
        with pytest.raises(MemoryModelError):
            span_lines(0, 0)


class TestMemoryRegion:
    def test_bounds_and_elements(self):
        region = MemoryRegion("r", base=0x1000, size=256)
        assert region.end == 0x1100
        assert region.contains(0x1000)
        assert region.contains(0x10FF)
        assert not region.contains(0x1100)
        assert region.element(2, 64) == 0x1080
        assert len(region.lines) == 4

    def test_address_of_bounds_checked(self):
        region = MemoryRegion("r", base=0, size=10)
        with pytest.raises(MemoryModelError):
            region.address_of(10)

    def test_invalid_region_rejected(self):
        with pytest.raises(MemoryModelError):
            MemoryRegion("bad", base=-1, size=10)
        with pytest.raises(MemoryModelError):
            MemoryRegion("bad", base=0, size=0)


class TestAddressAllocator:
    def test_allocations_are_line_aligned_and_disjoint(self):
        allocator = AddressAllocator()
        first = allocator.allocate("a", 100)
        second = allocator.allocate("b", 100)
        assert first.base % CACHE_LINE_BYTES == 0
        assert second.base % CACHE_LINE_BYTES == 0
        assert first.end <= second.base
        assert set(first.lines).isdisjoint(second.lines)

    def test_array_padding_to_line(self):
        allocator = AddressAllocator()
        packed = allocator.allocate_array("packed", element_size=24, count=4)
        padded = allocator.allocate_array("padded", element_size=24, count=4,
                                          pad_to_line=True)
        assert packed.size == 96
        assert padded.size == 4 * CACHE_LINE_BYTES

    def test_invalid_allocations_rejected(self):
        allocator = AddressAllocator()
        with pytest.raises(MemoryModelError):
            allocator.allocate("zero", 0)
        with pytest.raises(MemoryModelError):
            allocator.allocate_array("bad", 0, 4)


class TestCoherenceDirectory:
    def setup_method(self):
        self.costs = MemoryCosts()
        self.directory = CoherenceDirectory(4, self.costs)

    def test_cold_read_is_exclusive_miss(self):
        result = self.directory.access(0, 100, AccessType.READ)
        assert not result.hit
        assert result.new_state is LineState.EXCLUSIVE
        assert result.cycles == self.costs.l1_miss_to_memory

    def test_repeat_read_hits(self):
        self.directory.access(0, 100, AccessType.READ)
        result = self.directory.access(0, 100, AccessType.READ)
        assert result.hit
        assert result.cycles == self.costs.l1_hit

    def test_second_reader_shares_line(self):
        self.directory.access(0, 100, AccessType.READ)
        result = self.directory.access(1, 100, AccessType.READ)
        assert result.new_state is LineState.SHARED
        assert self.directory.state_of(0, 100) is LineState.SHARED
        assert self.directory.sharers(100) == {0, 1}

    def test_write_upgrade_invalidates_sharers(self):
        self.directory.access(0, 100, AccessType.READ)
        self.directory.access(1, 100, AccessType.READ)
        result = self.directory.access(0, 100, AccessType.WRITE)
        assert result.new_state is LineState.MODIFIED
        assert result.invalidated == (1,)
        assert self.directory.state_of(1, 100) is LineState.INVALID

    def test_dirty_line_travels_through_memory(self):
        self.directory.access(0, 200, AccessType.WRITE)
        result = self.directory.access(1, 200, AccessType.READ)
        assert result.writeback_through_memory
        assert result.cycles == self.costs.dirty_remote_transfer
        # After the transfer both copies are Shared (MESI, no owned state).
        assert self.directory.state_of(0, 200) is LineState.SHARED
        assert self.directory.state_of(1, 200) is LineState.SHARED

    def test_write_to_remote_dirty_line(self):
        self.directory.access(0, 300, AccessType.WRITE)
        result = self.directory.access(1, 300, AccessType.WRITE)
        assert result.writeback_through_memory
        assert self.directory.owner(300) == 1
        assert self.directory.state_of(0, 300) is LineState.INVALID

    def test_exclusive_write_is_silent_upgrade(self):
        self.directory.access(0, 400, AccessType.READ)
        result = self.directory.access(0, 400, AccessType.WRITE)
        assert result.hit
        assert result.new_state is LineState.MODIFIED
        assert result.invalidated == ()

    def test_atomic_rmw_costs_extra(self):
        plain = self.directory.access(0, 500, AccessType.WRITE).cycles
        atomic = self.directory.access(1, 501 * CACHE_LINE_BYTES,
                                       AccessType.RMW).cycles
        assert atomic == plain + self.costs.atomic_rmw_extra

    def test_cache_line_bouncing_is_expensive(self):
        """Alternating writers pay the dirty-transfer path every time."""
        self.directory.access(0, 600, AccessType.RMW)
        total = 0
        for i in range(1, 9):
            total += self.directory.access(i % 2, 600, AccessType.RMW).cycles
        assert total >= 8 * self.costs.dirty_remote_transfer

    def test_evict_dirty_line_charges_writeback(self):
        self.directory.access(0, 700, AccessType.WRITE)
        cycles = self.directory.evict(0, 700)
        assert cycles > 0
        assert self.directory.state_of(0, 700) is LineState.INVALID
        assert self.directory.evict(0, 700) == 0

    def test_stats_recorded(self):
        self.directory.access(0, 800, AccessType.READ)
        self.directory.access(0, 800, AccessType.READ)
        assert self.directory.stats.counter("accesses") == 2
        assert self.directory.stats.counter("hits") == 1
        assert self.directory.stats.counter("misses") == 1

    def test_core_bounds_checked(self):
        with pytest.raises(MemoryModelError):
            self.directory.access(9, 0, AccessType.READ)


class TestMemorySystem:
    def setup_method(self):
        self.memory = MemorySystem(4, MemoryCosts())

    def test_multi_line_access_charges_every_line(self):
        region = self.memory.allocate("big", 4 * CACHE_LINE_BYTES)
        single = self.memory.load(0, region.base, size=8)
        whole = self.memory.load(0, region.base, size=4 * CACHE_LINE_BYTES)
        assert whole > single

    def test_shared_counter_tracks_value_and_charges(self):
        counter = self.memory.shared_counter("c")
        cycles = counter.add(0)
        assert counter.value == 1
        assert cycles > 0
        value, read_cycles = counter.read(1)
        assert value == 1
        assert read_cycles > 0

    def test_shared_counter_observers(self):
        counter = self.memory.shared_counter("c2")
        seen = []
        counter.subscribe(lambda: seen.append(counter.value))
        counter.add(2, amount=3)
        counter.set(2, 10)
        counter.unsubscribe(lambda: None)  # unknown callback: no-op
        assert seen == [3, 10]

    def test_shared_flag(self):
        flag = self.memory.shared_flag("f")
        assert flag.read(0)[0] is False
        flag.write(1, True)
        assert flag.read(0)[0] is True

    def test_mutex_contention_costs_more(self):
        mutex = self.memory.mutex("m", syscall_cycles=1000)
        uncontended = mutex.acquire(0)
        mutex.release(0)
        mutex.acquire(1)
        contended = mutex.acquire(2)
        assert contended > uncontended
        assert mutex.contention_ratio > 0

    def test_payload_contention_factor_grows_with_busy_cores(self):
        alpha = self.memory.costs.payload_contention_per_core
        assert self.memory.begin_compute(0) == pytest.approx(1.0)
        assert self.memory.begin_compute(1) == pytest.approx(1.0 + alpha)
        assert self.memory.begin_compute(2) == pytest.approx(1.0 + 2 * alpha)
        self.memory.end_compute(1)
        assert self.memory.computing_cores == 2
        # Re-entering with fewer busy peers costs less.
        assert self.memory.begin_compute(1) == pytest.approx(1.0 + 2 * alpha)

    def test_access_size_must_be_positive(self):
        with pytest.raises(MemoryModelError):
            self.memory.load(0, 0, size=0)
