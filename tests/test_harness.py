"""Tests for the experiment harness (hashing, cache, artifacts, runner, CLI)."""

from __future__ import annotations

import dataclasses
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.common.config import SimConfig
from repro.common.errors import EvaluationError
from repro.eval import (
    EXPERIMENT_SPECS,
    EXPERIMENTS,
    benchmark_cases,
    figure9_benchmarks,
    headline_summary,
    run_benchmark_case,
)
from repro.harness import (
    ArtifactStore,
    ExperimentEngine,
    ResultCache,
    case_cache_key,
    decode,
    encode,
    experiment_cache_key,
    run_cases,
    stable_hash,
)
from repro.harness.cli import main as cli_main
from repro.runtime.base import RuntimeResult

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def tiny_config() -> SimConfig:
    return SimConfig(max_cycles=200_000_000).with_cores(4)


@pytest.fixture(scope="module")
def tiny_cases():
    return benchmark_cases(quick=True, scale=0.2)[:3]


@pytest.fixture(scope="module")
def serial_runs(tiny_config, tiny_cases):
    return figure9_benchmarks(tiny_config, cases=tiny_cases, num_workers=4)


class TestHashing:
    def test_stable_across_key_order(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_tuples_and_lists_hash_alike(self):
        # JSON canonicalisation means a decoded (list-shaped) value
        # addresses the same entry as the original tuple-shaped one.
        assert stable_hash((1, 2)) == stable_hash([1, 2])

    def test_config_change_changes_case_key(self, tiny_cases):
        case = tiny_cases[0]
        base = SimConfig()
        slower = dataclasses.replace(
            base, costs=dataclasses.replace(
                base.costs, memory=dataclasses.replace(
                    base.costs.memory, l1_hit=3
                )
            )
        )
        assert case_cache_key(case, base, 8) != case_cache_key(case, slower, 8)

    def test_worker_count_and_version_in_key(self, tiny_cases):
        case = tiny_cases[0]
        config = SimConfig()
        assert case_cache_key(case, config, 4) != case_cache_key(case, config, 8)
        assert (case_cache_key(case, config, 8, version="1.0.0")
                != case_cache_key(case, config, 8, version="1.0.1"))

    def test_worker_count_is_canonicalised_into_config(self, tiny_cases):
        # (8-core config, 4 workers) simulates the same machine as
        # (4-core config, 4 workers): Runtime.build_soc rebuilds the SoC
        # with the worker count, so the two must share one cache entry.
        case = tiny_cases[0]
        assert (case_cache_key(case, SimConfig(), 4)
                == case_cache_key(case, SimConfig().with_cores(4), 4))
        # Omitting num_workers defaults to the config's core count.
        assert (case_cache_key(case, SimConfig())
                == case_cache_key(case, SimConfig(), 8))

    def test_experiment_key_depends_on_parameters(self):
        config = SimConfig()
        assert (experiment_cache_key("figure7", config, {"num_tasks": 60})
                != experiment_cache_key("figure7", config, {"num_tasks": 120}))

    def test_unhashable_value_rejected(self):
        with pytest.raises(EvaluationError):
            stable_hash({"fn": print})


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ab" * 32) is None
        cache.put("ab" * 32, {"x": 1})
        assert cache.get("ab" * 32) == {"x": 1}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cd" * 32
        cache.put(key, [1, 2, 3])
        cache.path_for(key).write_text("{not json", encoding="utf-8")
        assert cache.get(key) is None

    def test_clear_and_accounting(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(3):
            cache.put(f"{i:02d}" + "e" * 60, {"i": i})
        assert len(cache) == 3
        assert cache.size_bytes() > 0
        assert cache.clear() == 3
        assert len(cache) == 0


class TestArtifacts:
    def test_runtime_result_round_trip(self, serial_runs):
        result = serial_runs[0].results["phentos"]
        clone = decode(encode(result))
        assert isinstance(clone, RuntimeResult)
        assert clone == result

    def test_benchmark_run_round_trip(self, serial_runs):
        run = serial_runs[0]
        clone = decode(encode(run))
        assert clone == run
        assert clone.case.params == run.case.params  # tuples, not lists
        assert clone.speedup_vs_serial("phentos") == \
            run.speedup_vs_serial("phentos")

    def test_headline_summary_round_trip(self, serial_runs):
        summary = headline_summary(serial_runs)
        assert decode(encode(summary)) == summary

    def test_encoded_form_is_json(self, serial_runs):
        text = json.dumps(encode(serial_runs))
        assert decode(json.loads(text)) == serial_runs

    def test_store_save_and_load(self, tmp_path, serial_runs):
        store = ArtifactStore(tmp_path)
        store.save("figure9", serial_runs, quick=True)
        assert store.names() == ["figure9"]
        assert store.load("figure9") == serial_runs
        assert store.metadata("figure9") == {"quick": True}
        with pytest.raises(EvaluationError):
            store.load("missing")
        with pytest.raises(EvaluationError):
            store.save("../escape", [])


class TestParallelRunner:
    def test_parallel_results_identical_to_serial(self, tiny_config,
                                                  tiny_cases, serial_runs):
        parallel = run_cases(tiny_config, tiny_cases, num_workers=4, jobs=2)
        assert parallel == serial_runs
        # Byte-identical once rendered through the artifact codec.
        assert (json.dumps(encode(parallel), sort_keys=True)
                == json.dumps(encode(serial_runs), sort_keys=True))

    def test_assembly_preserves_input_order(self, tiny_config, tiny_cases):
        reversed_runs = run_cases(tiny_config, list(reversed(tiny_cases)),
                                  num_workers=4, jobs=2)
        assert [run.case.key for run in reversed_runs] == \
            [case.key for case in reversed(tiny_cases)]

    def test_cache_populated_and_reused(self, tmp_path, tiny_config,
                                        tiny_cases, serial_runs):
        cache = ResultCache(tmp_path)
        first = run_cases(tiny_config, tiny_cases, num_workers=4,
                          jobs=2, cache=cache)
        assert cache.stats.misses == len(tiny_cases)
        assert cache.stats.hits == 0
        second = run_cases(tiny_config, tiny_cases, num_workers=4,
                           jobs=2, cache=cache)
        assert cache.stats.hits == len(tiny_cases)
        assert first == second == serial_runs

    def test_rejects_nonpositive_jobs(self, tiny_config, tiny_cases):
        with pytest.raises(EvaluationError):
            run_cases(tiny_config, tiny_cases, num_workers=4, jobs=0)

    def test_schema_invalid_entry_recomputed(self, tmp_path, tiny_config,
                                             tiny_cases, serial_runs):
        # An entry that parses as JSON but not as a BenchmarkRun must be
        # treated as a miss (and dropped), not crash the sweep.
        cache = ResultCache(tmp_path)
        run_cases(tiny_config, tiny_cases, num_workers=4, cache=cache)
        key = case_cache_key(tiny_cases[0], tiny_config, 4)
        cache.path_for(key).write_text('{"payload": {"half": "baked"}}',
                                       encoding="utf-8")
        runs = run_cases(tiny_config, tiny_cases, num_workers=4, cache=cache)
        assert runs == serial_runs
        assert cache.stats.hits == len(tiny_cases) - 1
        assert cache.get(key) is not None  # re-stored, decodable again


class TestExperimentRegistry:
    def test_registry_is_complete(self):
        assert set(EXPERIMENTS) == {"figure6", "figure7", "figure8",
                                    "figure9", "figure10", "table2",
                                    "headline", "scaling_curves"}

    def test_derived_experiments_declare_figure9_dependency(self):
        for experiment_id in ("figure8", "figure10", "headline",
                              "scaling_curves"):
            spec = EXPERIMENT_SPECS[experiment_id]
            assert spec.depends_on == ("figure9",)
            assert spec.is_derived
        for experiment_id in ("figure6", "figure7", "figure9", "table2"):
            assert not EXPERIMENT_SPECS[experiment_id].is_derived

    def test_cases_are_picklable_and_hashable(self, tiny_cases):
        import pickle
        clones = pickle.loads(pickle.dumps(tiny_cases))
        assert clones == tiny_cases
        assert len({hash(case) for case in tiny_cases}) == len(tiny_cases)

    def test_unknown_builder_rejected(self, tiny_cases):
        bad = dataclasses.replace(tiny_cases[0], builder="fortran")
        with pytest.raises(EvaluationError):
            bad.build()


class TestEngine:
    def test_second_invocation_served_from_cache(self, tmp_path, tiny_config,
                                                 tiny_cases, serial_runs):
        first_engine = ExperimentEngine(config=tiny_config, jobs=2,
                                        cache_dir=tmp_path)
        first = first_engine.run("figure9", cases=tiny_cases, num_workers=4)
        assert first == serial_runs

        second_engine = ExperimentEngine(config=tiny_config, jobs=2,
                                         cache_dir=tmp_path)
        second = second_engine.run("figure9", cases=tiny_cases, num_workers=4)
        assert second == first
        stats = second_engine.cache_stats
        assert stats.lookups == len(tiny_cases)
        assert stats.hit_rate >= 0.9

    def test_config_change_invalidates_cache(self, tmp_path, tiny_config,
                                             tiny_cases):
        engine = ExperimentEngine(config=tiny_config, cache_dir=tmp_path)
        engine.run("figure9", cases=tiny_cases, num_workers=4)
        slower = dataclasses.replace(
            tiny_config, costs=dataclasses.replace(
                tiny_config.costs, memory=dataclasses.replace(
                    tiny_config.costs.memory, l1_hit=3
                )
            )
        )
        other = ExperimentEngine(config=slower, cache_dir=tmp_path)
        other.run("figure9", cases=tiny_cases[:1], num_workers=4)
        assert other.cache_stats.hits == 0
        assert other.cache_stats.misses == 1

    def test_equivalent_core_count_is_served_from_cache(self, tmp_path,
                                                        tiny_config,
                                                        tiny_cases):
        # The worker count overrides the machine width, so a 2-core config
        # swept at 4 workers describes the same simulation as the 4-core
        # config: the canonicalised key must hit, not recompute.
        engine = ExperimentEngine(config=tiny_config, cache_dir=tmp_path)
        engine.run("figure9", cases=tiny_cases, num_workers=4)
        other = ExperimentEngine(config=tiny_config.with_cores(2),
                                 cache_dir=tmp_path)
        runs = other.run("figure9", cases=tiny_cases, num_workers=4)
        assert other.cache_stats.hits == len(tiny_cases)
        assert other.cache_stats.misses == 0
        assert [run.case.key for run in runs] == \
            [case.key for case in tiny_cases]

    def test_derived_experiment_chains_through_cache(self, tmp_path,
                                                     tiny_config, tiny_cases,
                                                     serial_runs):
        # First engine populates the disk cache; a fresh engine (no
        # in-memory memo) must serve the derived experiment's figure9
        # dependency entirely from disk.
        ExperimentEngine(config=tiny_config, cache_dir=tmp_path).run(
            "figure9", cases=tiny_cases, num_workers=4)
        fresh = ExperimentEngine(config=tiny_config, cache_dir=tmp_path)
        summary = fresh.run("headline", cases=tiny_cases, num_workers=4)
        assert fresh.cache_stats.hits >= len(tiny_cases)
        assert summary == headline_summary(serial_runs)

    def test_table2_whole_result_caching(self, tmp_path, tiny_config):
        engine = ExperimentEngine(config=tiny_config, cache_dir=tmp_path)
        first = engine.run("table2")
        second = engine.run("table2")
        assert first == second
        assert engine.cache_stats.hits == 1

    def test_artifacts_written_when_requested(self, tmp_path, tiny_config,
                                              tiny_cases):
        engine = ExperimentEngine(config=tiny_config,
                                  artifact_dir=tmp_path / "artifacts")
        runs = engine.run("figure9", cases=tiny_cases, num_workers=4)
        store = ArtifactStore(tmp_path / "artifacts")
        assert store.load("figure9") == runs

    def test_derived_without_cache_runs_sweep_once(self, monkeypatch,
                                                   tiny_config, tiny_cases):
        import repro.harness.engine as engine_module

        calls = []
        real_run_cases = engine_module.run_cases

        def counting_run_cases(*args, **kwargs):
            calls.append(1)
            return real_run_cases(*args, **kwargs)

        monkeypatch.setattr(engine_module, "run_cases", counting_run_cases)
        engine = ExperimentEngine(config=tiny_config)  # no disk cache
        engine.run("figure9", cases=tiny_cases, num_workers=4)
        engine.run("figure8", cases=tiny_cases, num_workers=4)
        engine.run("headline", cases=tiny_cases, num_workers=4)
        assert len(calls) == 1

    def test_unknown_experiment_rejected(self, tiny_config):
        engine = ExperimentEngine(config=tiny_config)
        with pytest.raises(EvaluationError):
            engine.run("figure11")
        with pytest.raises(EvaluationError):
            ExperimentEngine(jobs=0)


class TestLifetimeOverheadRegression:
    """Guards the simplified RuntimeResult.lifetime_overhead_per_task."""

    @staticmethod
    def _result(num_cores, elapsed, serial, overhead, tasks=10):
        return RuntimeResult(
            runtime="x", program="p", num_cores=num_cores,
            elapsed_cycles=elapsed, tasks_executed=tasks,
            serial_cycles=serial, mean_task_cycles=serial / max(tasks, 1),
            busy_cycles=serial, overhead_cycles=overhead,
        )

    def test_single_worker_uses_elapsed_minus_payload(self):
        result = self._result(1, elapsed=12_000, serial=2_000, overhead=999)
        assert result.lifetime_overhead_per_task == pytest.approx(1_000.0)

    def test_multi_worker_uses_accounted_overhead(self):
        result = self._result(4, elapsed=12_000, serial=2_000, overhead=8_000)
        assert result.lifetime_overhead_per_task == pytest.approx(200.0)

    def test_negative_overhead_clamped_to_zero(self):
        result = self._result(1, elapsed=1_500, serial=2_000, overhead=0)
        assert result.lifetime_overhead_per_task == 0.0

    def test_no_tasks_rejected(self):
        from repro.common.errors import RuntimeModelError
        result = self._result(1, elapsed=100, serial=10, overhead=0, tasks=0)
        with pytest.raises(RuntimeModelError):
            result.lifetime_overhead_per_task

    def test_matches_measured_overhead_path(self, tiny_config):
        # The Figure 7 pipeline runs single-worker; the property must agree
        # with the raw definition on a real measurement.
        from repro.apps.granularity import task_chain_program
        from repro.runtime.phentos import PhentosRuntime

        program = task_chain_program(30, 1, 0)
        result = PhentosRuntime(tiny_config).run(program, num_workers=1)
        expected = max(result.elapsed_cycles - result.serial_cycles, 0) \
            / result.tasks_executed
        assert result.lifetime_overhead_per_task == pytest.approx(expected)


class TestCli:
    def test_list_runs_in_subprocess(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True, text=True, cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0
        for experiment_id in EXPERIMENTS:
            assert experiment_id in proc.stdout

    def test_run_table2_text(self, capsys):
        assert cli_main(["run", "table2", "--no-cache", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "SSystem" in out

    def test_run_sweep_json_with_cache(self, tmp_path, capsys):
        argv = ["run", "figure9", "--quick", "--scale", "0.1",
                "--workers", "2", "--jobs", "2", "--format", "json",
                "--quiet", "--cache-dir", str(tmp_path)]
        assert cli_main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        runs = decode(payload["figure9"])
        assert [run.case.benchmark for run in runs]
        # Second invocation decodes to the identical result, from cache.
        assert cli_main(argv) == 0
        payload2 = json.loads(capsys.readouterr().out)
        assert payload2 == payload

    def test_cache_subcommand(self, tmp_path, capsys):
        cache = ResultCache(tmp_path)
        cache.put("ff" * 32, {"x": 1})
        assert cli_main(["cache", "--cache-dir", str(tmp_path)]) == 0
        assert "entries: 1" in capsys.readouterr().out
        assert cli_main(["cache", "--cache-dir", str(tmp_path),
                         "--clear"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert len(cache) == 0

    def test_unknown_experiment_exits_nonzero(self, capsys):
        assert cli_main(["run", "figure99", "--quiet"]) == 2
