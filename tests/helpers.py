"""Workload factory helpers shared by the test suite."""

from __future__ import annotations

from repro.runtime.phentos import PhentosRuntime
from repro.runtime.task import Task, TaskProgram, in_dep, inout_dep, out_dep


class PluginRuntime(PhentosRuntime):
    """A module-level non-``repro`` runtime class for transport tests."""

def make_chain_program(num_tasks: int = 10, payload: int = 200,
                       num_deps: int = 1, name: str = "chain") -> TaskProgram:
    """A dependence chain: every task inout-touches the same addresses."""
    addresses = [0x9000_0000 + 4096 * i for i in range(num_deps)]
    tasks = [
        Task(index=i, payload_cycles=payload,
             dependences=tuple(inout_dep(a) for a in addresses))
        for i in range(num_tasks)
    ]
    return TaskProgram(name=name, tasks=tasks)


def make_independent_program(num_tasks: int = 16, payload: int = 500,
                             name: str = "independent") -> TaskProgram:
    """Fully independent tasks, each writing its own block."""
    tasks = [
        Task(index=i, payload_cycles=payload,
             dependences=(out_dep(0xA000_0000 + 4096 * i),))
        for i in range(num_tasks)
    ]
    return TaskProgram(name=name, tasks=tasks)


def plugin_chain_builder(*, num_tasks: int = 6,
                         payload: int = 100) -> TaskProgram:
    """A module-level plugin builder (pickles by reference to workers)."""
    return make_chain_program(num_tasks=num_tasks, payload=payload,
                              name="plugin-chain")


def make_fork_join_program(width: int = 6, payload: int = 300,
                           name: str = "fork-join") -> TaskProgram:
    """A producer task, ``width`` parallel consumers, and a final reducer."""
    source = 0xB000_0000
    sinks = [0xB100_0000 + 4096 * i for i in range(width)]
    tasks = [Task(index=0, payload_cycles=payload, dependences=(out_dep(source),))]
    for i in range(width):
        tasks.append(Task(index=i + 1, payload_cycles=payload,
                          dependences=(in_dep(source), out_dep(sinks[i]))))
    tasks.append(Task(index=width + 1, payload_cycles=payload,
                      dependences=tuple(in_dep(s) for s in sinks[:8])))
    return TaskProgram(name=name, tasks=tasks)
