"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.common.config import SimConfig
from repro.runtime.task import Task, TaskProgram, in_dep, inout_dep, out_dep


@pytest.fixture
def config() -> SimConfig:
    """Default configuration (8 cores) with a safety cycle cap for tests."""
    return SimConfig(max_cycles=200_000_000)


@pytest.fixture
def small_config() -> SimConfig:
    """A 4-core machine for faster runtime tests."""
    return SimConfig(max_cycles=200_000_000).with_cores(4)
