"""Tests for the layered result cache (store interface, backends,
sharding, eviction, migration, concurrency, specs)."""

import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.common.errors import EvaluationError
from repro.harness.cache import (
    CACHE_BUDGET_ENV,
    CacheStats,
    CacheStore,
    FileLock,
    LruEviction,
    MemoryStore,
    NoEviction,
    ResultCache,
    ShardedDiskStore,
    TieredStore,
    open_store,
    parse_budget,
    resolve_budget,
)
from repro.harness.cache.sharded import INDEX_FILE
from repro.harness.cli import main as cli_main

SRC = str(Path(__file__).resolve().parent.parent / "src")


def key_of(i: int) -> str:
    """A deterministic 64-hex-digit cache key."""
    return format(i, "064x")


class CountingTracer:
    """Minimal tracer double: records count() calls."""

    def __init__(self):
        self.counters = {}

    def count(self, name, value=1):
        self.counters[name] = self.counters.get(name, 0) + value


def make_backends(tmp_path):
    return {
        "flat": ResultCache(tmp_path / "flat"),
        "sharded": ShardedDiskStore(tmp_path / "sharded"),
        "memory": MemoryStore(),
        "tiered": TieredStore(MemoryStore(), MemoryStore()),
    }


# --------------------------------------------------------------------- #
# Interface conformance across every backend
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", ["flat", "sharded", "memory", "tiered"])
class TestCacheStoreContract:
    def test_roundtrip_and_counters(self, tmp_path, backend):
        store = make_backends(tmp_path)[backend]
        assert isinstance(store, CacheStore)
        key = key_of(1)
        assert store.get(key) is None
        assert store.stats.misses == 1
        store.put(key, {"x": [1, 2]}, case="c")
        assert store.get(key) == {"x": [1, 2]}
        assert store.stats.hits == 1
        assert store.stats.stores == 1
        assert store.stats.hit_rate == pytest.approx(0.5)

    def test_contains_delete_len_clear(self, tmp_path, backend):
        store = make_backends(tmp_path)[backend]
        keys = [key_of(i) for i in range(3)]
        for i, key in enumerate(keys):
            store.put(key, {"i": i})
        assert all(store.contains(key) for key in keys)
        assert not store.contains(key_of(99))
        assert len(store) == 3
        assert store.size_bytes() > 0
        assert store.delete(keys[0]) is True
        assert store.delete(keys[0]) is False
        assert not store.contains(keys[0])
        assert store.clear() == 2
        assert len(store) == 0

    def test_demote_hit_reclassifies_and_drops(self, tmp_path, backend):
        store = make_backends(tmp_path)[backend]
        key = key_of(7)
        store.put(key, {"x": 1})
        assert store.get(key) == {"x": 1}
        store.demote_hit(key)
        assert (store.stats.hits, store.stats.misses) == (0, 1)
        assert not store.contains(key)

    def test_tracer_counters(self, tmp_path, backend):
        tracer = CountingTracer()
        store = make_backends(tmp_path)[backend]
        store.tracer = tracer
        key = key_of(3)
        store.get(key)
        store.put(key, {"x": 1})
        store.get(key)
        assert tracer.counters["cache.misses"] == 1
        assert tracer.counters["cache.hits"] == 1
        assert tracer.counters["cache.stores"] == 1
        assert tracer.counters["cache.read_seconds"] >= 0
        assert tracer.counters["cache.write_seconds"] >= 0


# --------------------------------------------------------------------- #
# Sharded layout, index sidecars, legacy fallback, migration
# --------------------------------------------------------------------- #
class TestShardedLayout:
    def test_two_level_fanout(self, tmp_path):
        store = ShardedDiskStore(tmp_path)
        key = "ab" + "c" * 62
        path = store.put(key, {"x": 1})
        assert path == tmp_path / "ab" / (("c" * 62) + ".json")
        assert store.key_for(path) == key
        legacy = store.legacy_path_for(key)
        assert legacy.name == f"{key}.json"
        assert store.key_for(legacy) == key

    def test_index_sidecar_tracks_entries_but_is_not_one(self, tmp_path):
        store = ShardedDiskStore(tmp_path)
        key = key_of(5)
        store.put(key, {"x": 1})
        sidecar = tmp_path / key[:2] / INDEX_FILE
        assert sidecar.is_file()
        index = json.loads(sidecar.read_text())
        assert key in index
        size, atime = index[key]
        assert size > 0 and atime > 0
        # The sidecar must never be counted, sized or cleared as an entry.
        assert len(store) == 1
        assert store.clear() == 1
        assert not sidecar.exists()

    def test_hit_touches_access_time(self, tmp_path):
        import time

        store = ShardedDiskStore(tmp_path)
        key = key_of(5)
        store.put(key, {"x": 1})
        before = store.reconcile()[key][2]
        time.sleep(0.02)
        store.get(key)
        after = store.reconcile()[key][2]
        assert after > before

    def test_legacy_flat_entries_served_with_zero_misses(self, tmp_path):
        flat = ResultCache(tmp_path)
        keys = [key_of(i) for i in range(4)]
        for i, key in enumerate(keys):
            flat.put(key, {"i": i})
        sharded = ShardedDiskStore(tmp_path)
        for i, key in enumerate(keys):
            assert sharded.contains(key)
            assert sharded.get(key) == {"i": i}
        assert sharded.stats.misses == 0
        assert sharded.stats.hits == len(keys)

    def test_migrate_is_idempotent_and_preserves_hits(self, tmp_path):
        flat = ResultCache(tmp_path)
        keys = [key_of(i) for i in range(4)]
        for i, key in enumerate(keys):
            flat.put(key, {"i": i})
        store = ShardedDiskStore(tmp_path)
        assert store.migrate() == len(keys)
        assert store.migrate() == 0  # second run finds nothing to do
        assert len(store) == len(keys)
        for i, key in enumerate(keys):
            assert store.path_for(key).is_file()
            assert not store.legacy_path_for(key).is_file()
            assert store.get(key) == {"i": i}
        assert store.stats.misses == 0

    def test_delete_removes_both_layouts_and_index_row(self, tmp_path):
        flat = ResultCache(tmp_path)
        store = ShardedDiskStore(tmp_path)
        key = key_of(9)
        flat.put(key, {"v": "legacy"})
        store.put(key, {"v": "sharded"})
        assert store.delete(key) is True
        assert not store.contains(key)
        index = store._read_index(tmp_path / key[:2] / INDEX_FILE)
        assert key not in index

    def test_demoted_entry_leaves_no_stale_index_row(self, tmp_path):
        # Regression: a demoted (invalidated) entry must drop out of the
        # LRU index too, so eviction cannot "remove" it a second time.
        store = ShardedDiskStore(tmp_path)
        keep, demoted = key_of(1), key_of(2)
        store.put(keep, {"x": 1})
        store.put(demoted, {"x": 2})
        store.get(demoted)
        store.demote_hit(demoted)
        index = store._read_index(tmp_path / demoted[:2] / INDEX_FILE)
        assert demoted not in index
        report = store.evict(budget=1)
        assert report["removed"] == 1  # only the surviving entry
        assert store.stats.evictions == 1

    def test_no_stray_temporaries_after_puts(self, tmp_path):
        store = ShardedDiskStore(tmp_path)
        for i in range(8):
            store.put(key_of(i), {"i": i})
        assert list(tmp_path.glob("*/*.tmp")) == []

    def test_reconcile_rebuilds_drifted_index(self, tmp_path):
        store = ShardedDiskStore(tmp_path)
        keys = [key_of(i) for i in range(3)]
        for i, key in enumerate(keys):
            store.put(key, {"i": i})
        # Corrupt one sidecar and delete an entry file behind its back.
        shard = tmp_path / keys[0][:2]
        (shard / INDEX_FILE).write_text("{broken", encoding="utf-8")
        store.path_for(keys[1]).unlink()
        catalogue = store.reconcile()
        assert set(catalogue) == {keys[0], keys[2]}
        rebuilt = store._read_index(shard / INDEX_FILE)
        assert keys[0] in rebuilt

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ShardedDiskStore(tmp_path)
        key = key_of(6)
        store.put(key, {"x": 1})
        store.path_for(key).write_text("{not json", encoding="utf-8")
        assert store.get(key) is None
        assert store.stats.misses == 1


# --------------------------------------------------------------------- #
# Eviction: LRU order, budgets, put-time enforcement
# --------------------------------------------------------------------- #
class TestEviction:
    def test_memory_lru_order_is_access_order(self, tmp_path):
        store = MemoryStore()
        a, b, c = key_of(1), key_of(2), key_of(3)
        for key in (a, b, c):
            store.put(key, {"k": key})
        per_entry = store.size_bytes() // 3
        store.get(a)  # a becomes most recently used; b is now LRU
        store.evict(budget=2 * per_entry)
        assert not store.contains(b)
        assert store.contains(a) and store.contains(c)
        assert store.stats.evictions == 1

    def test_sharded_budget_invariant_after_every_put(self, tmp_path):
        probe = ShardedDiskStore(tmp_path / "probe")
        probe.put(key_of(0), {"i": 0, "pad": "x" * 64})
        budget = 3 * probe.size_bytes() + 8
        store = ShardedDiskStore(tmp_path / "store",
                                 policy=LruEviction(budget))
        for i in range(12):
            store.put(key_of(i), {"i": i, "pad": "x" * 64})
            assert store.size_bytes() <= budget
        assert store.stats.evictions >= 9
        # The newest entry always survives while it fits the budget.
        assert store.contains(key_of(11))

    def test_sharded_eviction_is_lru_by_access(self, tmp_path):
        import time

        store = ShardedDiskStore(tmp_path)
        old, touched, new = key_of(1), key_of(2), key_of(3)
        for key in (old, touched, new):
            store.put(key, {"pad": "x" * 32})
            time.sleep(0.01)  # strictly ordered access times
        store.get(touched)  # refresh: 'old' is now least recently used
        per_entry = store.size_bytes() // 3
        report = store.evict(budget=2 * per_entry)
        assert report["removed"] == 1
        assert not store.contains(old)
        assert store.contains(touched) and store.contains(new)

    def test_oversized_entry_is_evicted_too(self, tmp_path):
        store = ShardedDiskStore(tmp_path, policy=LruEviction(64))
        store.put(key_of(1), {"pad": "x" * 4096})
        assert store.size_bytes() <= 64
        assert len(store) == 0

    def test_evict_report_and_tracer(self, tmp_path):
        tracer = CountingTracer()
        store = ShardedDiskStore(tmp_path, tracer=tracer)
        for i in range(4):
            store.put(key_of(i), {"i": i})
        report = store.evict(budget=1)
        assert report["removed"] == 4
        assert report["freed_bytes"] > 0
        assert report["size_bytes"] == 0
        assert not report["skipped"]
        assert tracer.counters["cache.evictions"] == 4
        assert tracer.counters["cache.evicted_bytes"] > 0

    def test_nonblocking_evict_skips_when_locked(self, tmp_path):
        store = ShardedDiskStore(tmp_path)
        store.put(key_of(1), {"x": 1})
        lock = FileLock(tmp_path / ".evict.lock", timeout=1.0)
        assert lock.acquire()
        try:
            report = store.evict(budget=1, block=False)
            assert report["skipped"]
            assert store.contains(key_of(1))
        finally:
            lock.release()

    def test_flat_backend_refuses_eviction(self, tmp_path):
        with pytest.raises(EvaluationError):
            ResultCache(tmp_path).evict(budget=1)

    def test_unbudgeted_store_never_evicts(self, tmp_path):
        store = ShardedDiskStore(tmp_path)  # NoEviction default
        assert isinstance(store.policy, NoEviction)
        for i in range(16):
            store.put(key_of(i), {"i": i})
        assert len(store) == 16
        assert store.stats.evictions == 0


# --------------------------------------------------------------------- #
# Locks and the persist_stats lost-update fix
# --------------------------------------------------------------------- #
class TestLocksAndStats:
    def test_filelock_mutual_exclusion_and_release(self, tmp_path):
        first = FileLock(tmp_path / "x.lock", timeout=0.5)
        second = FileLock(tmp_path / "x.lock", timeout=0.05)
        assert first.acquire()
        assert not second.acquire()
        first.release()
        assert second.acquire()
        second.release()

    def test_filelock_breaks_stale_holder(self, tmp_path):
        import os
        path = tmp_path / "x.lock"
        path.write_text("12345")
        old = path.stat().st_mtime - 120
        os.utime(path, (old, old))
        lock = FileLock(path, timeout=0.5, stale_seconds=60.0)
        assert lock.acquire()
        lock.release()

    def test_concurrent_persists_merge_instead_of_overwriting(self,
                                                              tmp_path):
        # The historical race: engine A and engine B close at once, each
        # read-modify-writes stats.json, one delta vanishes.  Now the
        # merge is serialised, so the lifetime document sums both.
        stores = [ResultCache(tmp_path) for _ in range(4)]
        for i, store in enumerate(stores):
            store.get(key_of(i))  # one miss each
        threads = [threading.Thread(target=store.persist_stats)
                   for store in stores]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert ResultCache(tmp_path).lifetime_stats().misses == 4

    def test_persist_keeps_delta_when_lock_unavailable(self, tmp_path):
        store = ResultCache(tmp_path)
        store._stats_lock_timeout = 0.05
        store.get(key_of(1))
        blocker = FileLock(tmp_path / ".stats.lock", timeout=0.5)
        assert blocker.acquire()
        try:
            assert store.persist_stats() is None  # could not land
        finally:
            blocker.release()
        # The delta was retained, so the retry persists the lost lookup.
        assert store.persist_stats() == store.stats_path
        assert ResultCache(tmp_path).lifetime_stats().misses == 1

    def test_sharded_lifetime_stats_roundtrip_with_evictions(self,
                                                             tmp_path):
        store = ShardedDiskStore(tmp_path)
        for i in range(3):
            store.put(key_of(i), {"i": i})
        store.get(key_of(0))
        store.evict(budget=1)
        assert store.persist_stats() == store.stats_path
        lifetime = ShardedDiskStore(tmp_path).lifetime_stats()
        assert lifetime.stores == 3
        assert lifetime.hits == 1
        assert lifetime.evictions == 3
        assert isinstance(lifetime, CacheStats)


# --------------------------------------------------------------------- #
# Tiered composition
# --------------------------------------------------------------------- #
class TestTieredStore:
    def test_read_through_write_back(self, tmp_path):
        local = ShardedDiskStore(tmp_path / "local")
        shared = ShardedDiskStore(tmp_path / "shared")
        key = key_of(1)
        shared.put(key, {"x": 1})
        tiered = TieredStore(local, shared)
        assert tiered.get(key) == {"x": 1}
        assert tiered.stats.hits == 1
        # The shared hit landed locally; the next read is local.
        assert local.contains(key)
        shared.delete(key)
        assert tiered.get(key) == {"x": 1}

    def test_writes_and_maintenance_stay_local(self, tmp_path):
        local = ShardedDiskStore(tmp_path / "local")
        shared = ShardedDiskStore(tmp_path / "shared")
        shared.put(key_of(1), {"x": 1})
        tiered = TieredStore(local, shared)
        tiered.put(key_of(2), {"x": 2})
        assert local.contains(key_of(2))
        assert not shared.contains(key_of(2))
        assert len(tiered) == 1  # enumerates the local tier only
        assert tiered.clear() == 1
        assert shared.contains(key_of(1))  # shared tier never mutated

    def test_one_logical_lookup_counts_once(self, tmp_path):
        local = MemoryStore()
        shared = MemoryStore()
        shared.put(key_of(1), {"x": 1})
        tiered = TieredStore(local, shared)
        tiered.get(key_of(1))
        tiered.get(key_of(9))
        assert (tiered.stats.hits, tiered.stats.misses) == (1, 1)
        # Sub-stores never count the composed store's lookups.
        assert local.stats.lookups == 0
        assert shared.stats.lookups == 0


# --------------------------------------------------------------------- #
# Spec parsing and budgets
# --------------------------------------------------------------------- #
class TestSpecs:
    def test_parse_budget_grammar(self):
        assert parse_budget(None) is None
        assert parse_budget("none") is None
        assert parse_budget("") is None
        assert parse_budget(4096) == 4096
        assert parse_budget("4096") == 4096
        assert parse_budget("4k") == 4096
        assert parse_budget("512M") == 512 * 1024 ** 2
        assert parse_budget("2G") == 2 * 1024 ** 3
        assert parse_budget("1.5K") == 1536
        assert parse_budget("1TiB") == 1024 ** 4
        for bad in ("12x", "garbage", "-1", 0, -5):
            with pytest.raises(EvaluationError):
                parse_budget(bad)

    def test_budget_env_fallback(self, monkeypatch):
        monkeypatch.setenv(CACHE_BUDGET_ENV, "64K")
        assert resolve_budget(None) == 64 * 1024
        assert resolve_budget("128K") == 128 * 1024  # explicit wins
        assert resolve_budget("none") is None  # explicit none beats env

    def test_open_store_schemes(self, tmp_path):
        assert isinstance(open_store("mem:"), MemoryStore)
        flat = open_store(f"dir:{tmp_path / 'flat'}")
        assert isinstance(flat, ResultCache)
        assert not isinstance(flat, ShardedDiskStore)
        assert isinstance(open_store(f"sharded:{tmp_path / 's'}"),
                          ShardedDiskStore)
        assert isinstance(open_store(str(tmp_path / "bare")),
                          ShardedDiskStore)
        assert isinstance(open_store(tmp_path / "pathlike"),
                          ShardedDiskStore)
        tiered = open_store(
            f"tiered:{tmp_path / 'local'}|{tmp_path / 'shared'}")
        assert isinstance(tiered, TieredStore)
        assert isinstance(tiered.local, ShardedDiskStore)

    def test_open_store_passthrough_adopts_tracer(self, tmp_path):
        tracer = CountingTracer()
        store = MemoryStore()
        assert open_store(store, tracer=tracer) is store
        assert store.tracer is tracer

    def test_open_store_budget_attaches_lru(self, tmp_path,
                                            monkeypatch):
        store = open_store(str(tmp_path), budget="1M")
        assert isinstance(store.policy, LruEviction)
        assert store.policy.budget_bytes == 1024 ** 2
        monkeypatch.setenv(CACHE_BUDGET_ENV, "2M")
        from_env = open_store(str(tmp_path))
        assert from_env.policy.budget_bytes == 2 * 1024 ** 2

    def test_open_store_rejects_bad_specs(self, tmp_path):
        for bad in ("", "mem:somewhere", "dir:", "sharded:",
                    "tiered:", "tiered:onlylocal", 42):
            with pytest.raises(EvaluationError):
                open_store(bad)
        with pytest.raises(EvaluationError):
            open_store(f"dir:{tmp_path}", budget="1M")


# --------------------------------------------------------------------- #
# Multi-process stress: concurrent writers on one sharded store
# --------------------------------------------------------------------- #
_WORKER_SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from repro.harness.cache import ShardedDiskStore

root, worker, rounds, per_round = (
    sys.argv[1], int(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4]))
store = ShardedDiskStore(root)
for r in range(rounds):
    for i in range(per_round):
        n = worker * 10_000 + r * per_round + i
        key = format(n, "064x")
        store.put(key, {{"worker": worker, "n": n}}, round=r)
        got = store.get(key)
        assert got == {{"worker": worker, "n": n}}, (key, got)
    # A generous budget: exercises the eviction lock and reconcile
    # against live writers without ever removing a legitimate entry.
    store.evict(budget=1 << 40)
print(store.stats.stores)
"""


class TestMultiProcessStress:
    def test_concurrent_put_get_evict_rounds(self, tmp_path):
        workers, rounds, per_round = 4, 3, 6
        script = _WORKER_SCRIPT.format(src=SRC)
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(tmp_path),
                 str(worker), str(rounds), str(per_round)],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
            for worker in range(workers)
        ]
        for worker, proc in enumerate(procs):
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, f"worker {worker} failed: {err}"
            assert out.strip() == str(rounds * per_round)

        store = ShardedDiskStore(tmp_path)
        expected = {
            format(worker * 10_000 + r * per_round + i, "064x"):
                worker * 10_000 + r * per_round + i
            for worker in range(workers)
            for r in range(rounds)
            for i in range(per_round)
        }
        # No lost entries, no torn reads: every key readable and correct.
        assert len(store) == len(expected)
        for key, n in expected.items():
            payload = store.get(key)
            assert payload == {"worker": n // 10_000, "n": n}, key
        # The final index must be consistent with the shard contents.
        catalogue = store.reconcile()
        assert set(catalogue) == set(expected)
        for shard_dir in {path.parent for path in store.entries()}:
            index = store._read_index(shard_dir / INDEX_FILE)
            on_disk = {store.key_for(path)
                       for path in shard_dir.glob("*.json")
                       if not path.name.startswith(".")}
            assert set(index) == on_disk


# --------------------------------------------------------------------- #
# CLI: cache actions, budgets, bench rows
# --------------------------------------------------------------------- #
class TestCacheCli:
    def test_cache_migrate_subcommand(self, tmp_path, capsys):
        flat = ResultCache(tmp_path)
        keys = [key_of(i) for i in range(3)]
        for i, key in enumerate(keys):
            flat.put(key, {"i": i})
        assert cli_main(["cache", "migrate",
                         "--cache-dir", str(tmp_path)]) == 0
        assert "migrated 3" in capsys.readouterr().out
        store = ShardedDiskStore(tmp_path)
        assert all(store.path_for(key).is_file() for key in keys)
        assert cli_main(["cache", "migrate",
                         "--cache-dir", str(tmp_path)]) == 0
        assert "migrated 0" in capsys.readouterr().out

    def test_cache_evict_subcommand(self, tmp_path, capsys):
        store = ShardedDiskStore(tmp_path)
        for i in range(4):
            store.put(key_of(i), {"i": i, "pad": "x" * 64})
        assert cli_main(["cache", "evict", "--cache-dir", str(tmp_path),
                         "--cache-budget", "1"]) == 0
        assert "evicted 4" in capsys.readouterr().out
        assert len(ShardedDiskStore(tmp_path)) == 0

    def test_cache_evict_requires_budget(self, tmp_path, capsys,
                                         monkeypatch):
        monkeypatch.delenv(CACHE_BUDGET_ENV, raising=False)
        assert cli_main(["cache", "evict",
                         "--cache-dir", str(tmp_path)]) == 1
        assert "--cache-budget" in capsys.readouterr().err

    def test_cache_stats_reports_evictions(self, tmp_path, capsys):
        store = ShardedDiskStore(tmp_path)
        for i in range(2):
            store.put(key_of(i), {"i": i})
        store.evict(budget=1)
        store.persist_stats()
        assert cli_main(["cache", "--stats",
                         "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "lifetime evictions: 2" in out

    def test_cache_dir_accepts_spec_strings(self, tmp_path, capsys):
        assert cli_main(["cache", "--cache-dir",
                         f"dir:{tmp_path}"]) == 0
        assert "entries: 0" in capsys.readouterr().out

    def test_run_rejects_bad_budget(self, tmp_path, capsys):
        assert cli_main(["run", "table2", "--quiet",
                         "--cache-dir", str(tmp_path / "c"),
                         "--cache-budget", "garbage"]) != 0


class TestCacheBench:
    def test_measure_cache_shape(self):
        from repro.harness.bench import measure_cache

        report = measure_cache(entries=8, payload_fields=4)
        assert report["entries"] == 8
        for backend in ("flat", "sharded"):
            numbers = report[backend]
            assert 0 <= numbers["put_p50_seconds"] \
                <= numbers["put_p95_seconds"]
            assert 0 <= numbers["get_p50_seconds"] \
                <= numbers["get_p95_seconds"]

    def test_engine_bench_includes_cache_rows(self):
        from repro.harness.bench import run_engine_bench

        entry = run_engine_bench(num_events=2_000, include_case=False,
                                 repeats=1, include_pool=False,
                                 include_cache=True)
        assert "flat" in entry["cache"] and "sharded" in entry["cache"]
        skipped = run_engine_bench(num_events=2_000, include_case=False,
                                   repeats=1, include_pool=False,
                                   include_cache=False)
        assert "cache" not in skipped


# --------------------------------------------------------------------- #
# Engine integration: budgets and spec stores end to end
# --------------------------------------------------------------------- #
class TestEngineIntegration:
    def test_engine_accepts_prebuilt_store(self):
        from repro.common.config import SimConfig
        from repro.harness.engine import ExperimentEngine

        store = MemoryStore()
        with ExperimentEngine(config=SimConfig(),
                              cache_dir=store) as engine:
            assert engine.cache is store
            assert engine.cache.tracer is engine.tracer

    def test_engine_budget_reaches_store(self, tmp_path):
        from repro.common.config import SimConfig
        from repro.harness.engine import ExperimentEngine

        with ExperimentEngine(config=SimConfig(),
                              cache_dir=tmp_path / "cache",
                              cache_budget="1M") as engine:
            assert isinstance(engine.cache.policy, LruEviction)
            assert engine.cache.policy.budget_bytes == 1024 ** 2

    def test_study_cache_budget_knob(self, tmp_path):
        from repro.api import Study

        study = Study().cache(tmp_path / "cache", budget="2M")
        assert study._cache_budget == "2M"
