"""Tests for the 48-packet Picos task-descriptor encoding (Figure 3)."""

from __future__ import annotations

import pytest

from repro.common.errors import PicosError
from repro.picos.packets import (
    HEADER_PACKETS,
    MAX_DEPENDENCES,
    PACKETS_PER_DEPENDENCE,
    PACKETS_PER_DESCRIPTOR,
    Direction,
    TaskDependence,
    TaskDescriptor,
    decode_descriptor,
    encode_descriptor,
    encode_nonzero_packets,
    nonzero_packet_count,
    zero_packet_count,
)


def make_descriptor(num_deps: int, sw_id: int = 0xABCD_1234_5678) -> TaskDescriptor:
    deps = tuple(
        TaskDependence(address=0x1000_0000_0000 + i * 64,
                       direction=Direction((i % 3) + 1))
        for i in range(num_deps)
    )
    return TaskDescriptor(sw_id=sw_id, dependences=deps)


class TestPacketCounts:
    def test_constants_match_figure3(self):
        assert PACKETS_PER_DESCRIPTOR == 48
        assert HEADER_PACKETS == 3
        assert PACKETS_PER_DEPENDENCE == 3
        assert MAX_DEPENDENCES == 15
        assert HEADER_PACKETS + MAX_DEPENDENCES * PACKETS_PER_DEPENDENCE == 48

    @pytest.mark.parametrize("deps", range(0, 16))
    def test_nonzero_plus_zero_is_always_48(self, deps):
        assert nonzero_packet_count(deps) == 3 + 3 * deps
        assert zero_packet_count(deps) == (15 - deps) * 3
        assert nonzero_packet_count(deps) + zero_packet_count(deps) == 48

    def test_out_of_range_dependence_count_rejected(self):
        with pytest.raises(PicosError):
            nonzero_packet_count(16)
        with pytest.raises(PicosError):
            zero_packet_count(-1)


class TestEncodeDecode:
    @pytest.mark.parametrize("deps", [0, 1, 7, 15])
    def test_roundtrip(self, deps):
        descriptor = make_descriptor(deps)
        packets = encode_descriptor(descriptor)
        assert len(packets) == 48
        assert decode_descriptor(packets) == descriptor

    def test_nonzero_prefix_matches_descriptor(self):
        descriptor = make_descriptor(2)
        prefix = encode_nonzero_packets(descriptor)
        assert len(prefix) == descriptor.nonzero_packets == 9
        full = encode_descriptor(descriptor)
        assert full[:9] == prefix
        assert all(packet == 0 for packet in full[9:])

    def test_sw_id_split_across_two_words(self):
        descriptor = make_descriptor(0, sw_id=(0xDEAD << 32) | 0xBEEF)
        packets = encode_descriptor(descriptor)
        assert packets[0] == 0xDEAD
        assert packets[1] == 0xBEEF
        assert packets[2] == 0

    def test_dependence_slot_layout(self):
        address = (0x1234 << 32) | 0x5678
        descriptor = TaskDescriptor(
            sw_id=1,
            dependences=(TaskDependence(address, Direction.INOUT),),
        )
        packets = encode_descriptor(descriptor)
        assert packets[2] == 1                      # dependence count
        assert packets[3] == 0x1234                 # address high
        assert packets[4] == 0x5678                 # address low
        assert packets[5] == int(Direction.INOUT)   # directionality

    def test_decode_rejects_wrong_length(self):
        with pytest.raises(PicosError):
            decode_descriptor([0] * 47)

    def test_decode_rejects_bad_direction(self):
        packets = encode_descriptor(make_descriptor(1))
        packets[5] = 9
        with pytest.raises(PicosError):
            decode_descriptor(packets)

    def test_decode_rejects_nonzero_padding(self):
        packets = encode_descriptor(make_descriptor(1))
        packets[-1] = 1
        with pytest.raises(PicosError):
            decode_descriptor(packets)

    def test_decode_rejects_oversized_words(self):
        packets = encode_descriptor(make_descriptor(0))
        packets[0] = 1 << 32
        with pytest.raises(PicosError):
            decode_descriptor(packets)

    def test_decode_rejects_too_many_dependences(self):
        packets = encode_descriptor(make_descriptor(0))
        packets[2] = 16
        with pytest.raises(PicosError):
            decode_descriptor(packets)


class TestDescriptorValidation:
    def test_more_than_15_dependences_rejected(self):
        deps = tuple(TaskDependence(64 * i, Direction.IN) for i in range(16))
        with pytest.raises(PicosError):
            TaskDescriptor(sw_id=0, dependences=deps)

    def test_sw_id_must_be_64bit(self):
        with pytest.raises(PicosError):
            TaskDescriptor(sw_id=1 << 64)

    def test_dependence_address_must_be_64bit(self):
        with pytest.raises(PicosError):
            TaskDependence(address=1 << 64, direction=Direction.IN)

    def test_direction_semantics(self):
        assert Direction.IN.reads and not Direction.IN.writes
        assert Direction.OUT.writes and not Direction.OUT.reads
        assert Direction.INOUT.reads and Direction.INOUT.writes
