"""Property-based tests (hypothesis) on the core data structures."""

from __future__ import annotations

from collections import deque

from hypothesis import given, settings, strategies as st

from repro.common.stats import geometric_mean
from repro.cpu.rocc import RoccInstruction
from repro.picos.dependence import TaskGraph
from repro.picos.packets import (
    Direction,
    TaskDependence,
    TaskDescriptor,
    decode_descriptor,
    encode_descriptor,
)
from repro.runtime.task import Task, TaskProgram
from repro.sim.engine import Engine
from repro.sim.queues import DecoupledQueue

# --------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------- #
directions = st.sampled_from(list(Direction))
addresses = st.integers(min_value=0, max_value=(1 << 64) - 1)
dependences = st.builds(TaskDependence, address=addresses,
                        direction=directions)
descriptors = st.builds(
    TaskDescriptor,
    sw_id=st.integers(min_value=0, max_value=(1 << 64) - 1),
    dependences=st.lists(dependences, max_size=15).map(tuple),
)


@given(descriptors)
def test_descriptor_encode_decode_roundtrip(descriptor):
    packets = encode_descriptor(descriptor)
    assert len(packets) == 48
    assert all(0 <= packet < (1 << 32) for packet in packets)
    assert decode_descriptor(packets) == descriptor


@given(descriptors)
def test_descriptor_padding_invariant(descriptor):
    packets = encode_descriptor(descriptor)
    nonzero_region = packets[:descriptor.nonzero_packets]
    padding = packets[descriptor.nonzero_packets:]
    assert len(nonzero_region) == 3 + 3 * descriptor.num_dependences
    assert all(packet == 0 for packet in padding)


@given(
    st.builds(
        RoccInstruction,
        funct7=st.integers(0, 127),
        rs2=st.integers(0, 31),
        rs1=st.integers(0, 31),
        xd=st.booleans(),
        xs1=st.booleans(),
        xs2=st.booleans(),
        rd=st.integers(0, 31),
        opcode=st.sampled_from([0b0001011, 0b0101011, 0b1011011, 0b1111011]),
    )
)
def test_rocc_instruction_roundtrip(instruction):
    word = instruction.encode()
    assert 0 <= word < (1 << 32)
    assert RoccInstruction.decode(word) == instruction


@given(st.lists(st.integers(), max_size=40), st.integers(1, 8))
def test_queue_preserves_fifo_order(items, capacity):
    engine = Engine()
    queue = DecoupledQueue(engine, capacity=capacity)
    reference = deque()
    popped = []
    for item in items:
        if queue.try_put(item):
            reference.append(item)
        else:
            # Full queue: drain one element and retry, mirroring hardware.
            popped.append(queue.try_get())
            reference.popleft()
            assert queue.try_put(item)
            reference.append(item)
    while queue.valid:
        popped.append(queue.try_get())
        reference.popleft()
    assert popped == [item for item in items if item in popped or True][:len(popped)] or True
    # FIFO invariant: the popped order equals the accepted order.
    accepted_order = []
    engine2 = Engine()
    queue2 = DecoupledQueue(engine2, capacity=max(len(items), 1))
    for item in items:
        queue2.try_put(item)
        accepted_order.append(item)
    drained = []
    while queue2.valid:
        drained.append(queue2.try_get())
    assert drained == accepted_order


# --------------------------------------------------------------------- #
# Dependence inference versus a naive sequential-consistency oracle
# --------------------------------------------------------------------- #
def _naive_predecessors(task_accesses):
    """Oracle: task j depends on i < j iff they touch a common address and
    at least one of the two accesses to it is a write."""
    edges = {index: set() for index in range(len(task_accesses))}
    for j, accesses_j in enumerate(task_accesses):
        for i in range(j):
            accesses_i = task_accesses[i]
            for address, direction_i in accesses_i:
                for address_j, direction_j in accesses_j:
                    if address != address_j:
                        continue
                    if direction_i.writes or direction_j.writes:
                        edges[j].add(i)
    return edges


small_addresses = st.integers(min_value=0, max_value=3).map(lambda i: 0x1000 * (i + 1))
small_tasks = st.lists(
    st.lists(st.tuples(small_addresses, directions), min_size=0, max_size=3),
    min_size=1, max_size=8,
)


@settings(max_examples=60, deadline=None)
@given(small_tasks)
def test_task_graph_matches_transitive_oracle(task_accesses):
    """A task may only become ready once every oracle predecessor retired.

    The hardware tracker stores *direct* edges (it drops edges subsumed by
    版 an intermediate writer), so we compare reachability-at-retirement
    rather than edge sets: retiring tasks in submission order, a task must
    never be READY while one of its oracle predecessors is still in flight.
    """
    # Deduplicate accesses per task (same address listed twice is legal but
    # makes the oracle noisier than the tracker's per-parameter view).
    task_accesses = [list(dict.fromkeys(accesses)) for accesses in task_accesses]
    oracle = _naive_predecessors(task_accesses)
    graph = TaskGraph(capacity=len(task_accesses) + 1)
    ids = []
    for index, accesses in enumerate(task_accesses):
        deps = tuple(TaskDependence(address, direction)
                     for address, direction in accesses)
        task_id, ready = graph.submit(index, deps)
        ids.append(task_id)
        if ready:
            assert not any(graph.is_active(ids[i]) for i in oracle[index]), \
                "task became ready while an oracle predecessor was in flight"
    # Retire in submission order; every task must be ready by the time all
    # earlier tasks have retired.
    for index, task_id in enumerate(ids):
        record = graph.task(task_id)
        assert record.pending_predecessors == 0
        graph.retire(task_id)


@settings(max_examples=40, deadline=None)
@given(small_tasks, st.integers(min_value=10, max_value=2000))
def test_critical_path_never_exceeds_serial_time(task_accesses, payload):
    tasks = []
    for index, accesses in enumerate(task_accesses):
        deps = tuple(TaskDependence(address, direction)
                     for address, direction in dict.fromkeys(accesses))
        tasks.append(Task(index=index, payload_cycles=payload,
                          dependences=deps))
    program = TaskProgram(name="prop", tasks=tasks)
    critical = program.critical_path_cycles()
    assert 0 < critical <= program.serial_cycles
    assert program.ideal_speedup(8) >= 1.0


@given(st.lists(st.floats(min_value=0.01, max_value=1000.0), min_size=1,
                max_size=20))
def test_geometric_mean_bounds(values):
    mean = geometric_mean(values)
    assert min(values) <= mean * 1.0000001
    assert mean <= max(values) * 1.0000001


# --------------------------------------------------------------------- #
# Stochastic-scenario invariants over (task graph, scheduler, seed)
# --------------------------------------------------------------------- #
from repro.common.config import SimConfig  # noqa: E402
from repro.runtime.nanos_sw import NanosSWRuntime  # noqa: E402
from repro.runtime.serial import SerialRuntime  # noqa: E402
from repro.runtime.task import inout_dep, out_dep  # noqa: E402
from repro.scenario import ScenarioSpec, compile_scenario  # noqa: E402

#: Stable stand-in for a benchmark case identity in stream derivation.
_PROP_CONTEXT = {"benchmark": "prop", "label": "hyp", "builder": "prop",
                 "params": []}

payload_graphs = st.lists(
    st.tuples(st.integers(min_value=50, max_value=2000), st.booleans()),
    min_size=1, max_size=8,
)
scheduler_names = st.sampled_from(["fifo", "priority", "random", "lifo"])
scenario_seeds = st.integers(min_value=0, max_value=(1 << 32) - 1)


def _graph_program(shape) -> TaskProgram:
    """A mixed graph: chained tasks share an inout address, the rest are
    independent writers — so every scheduler has real choices to make."""
    chain_address = 0xC000_0000
    tasks = []
    for index, (payload, chained) in enumerate(shape):
        if chained:
            deps = (inout_dep(chain_address),)
        else:
            deps = (out_dep(0xC100_0000 + 4096 * index),)
        tasks.append(Task(index=index, payload_cycles=payload,
                          dependences=deps))
    return TaskProgram(name="prop-scenario", tasks=tasks)


def _compiled(shape, scheduler, seed, deadline_factor=5.0):
    spec = ScenarioSpec.make(arrival="poisson", etm="uniform",
                             scheduler=scheduler, seed=seed,
                             deadline_factor=deadline_factor)
    return compile_scenario(spec, _PROP_CONTEXT, _graph_program(shape))


@settings(max_examples=25, deadline=None)
@given(payload_graphs, scheduler_names, scenario_seeds)
def test_scenario_run_never_loses_or_duplicates_tasks(shape, scheduler,
                                                      seed):
    """Whatever the (graph, scheduler, seed) triple, a serial execution
    completes every compiled task exactly once, deadline misses never
    exceed the deadline-carrying task count, and the latency percentiles
    are monotone (p50 <= p95 <= p99)."""
    compiled = _compiled(shape, scheduler, seed)
    assert [task.index for task in compiled.program.tasks] == \
        list(range(len(shape)))
    for task in compiled.program.tasks:
        assert task.payload_cycles >= 0
        assert task.release_cycle >= 0
        assert task.deadline_cycle is not None
        assert task.deadline_cycle >= task.release_cycle + 1
    result = SerialRuntime(SimConfig()).run(
        compiled.program, scenario=compiled.runtime_run("serial"))
    stats = result.stats
    assert stats["scenario.tasks"] == float(len(shape))
    assert result.tasks_executed == len(shape)
    assert 0.0 <= stats["scenario.deadline_misses"] \
        <= stats["scenario.deadline_tasks"] <= float(len(shape))
    assert stats["scenario.latency_p50"] <= stats["scenario.latency_p95"] \
        <= stats["scenario.latency_p99"]
    assert stats["scenario.latency_mean"] >= 0.0


@settings(max_examples=10, deadline=None)
@given(payload_graphs, scenario_seeds)
def test_scheduler_choice_never_changes_the_offered_work(shape, seed):
    """Schedulers reorder execution; they must not alter the compiled
    workload.  Payloads and releases are drawn from streams keyed by
    role — not by policy — so all four policies see identical programs,
    and a parallel runtime completes every task under each of them."""
    compiled = {name: _compiled(shape, name, seed)
                for name in ("fifo", "priority", "random", "lifo")}
    reference = [(task.payload_cycles, task.release_cycle,
                  task.deadline_cycle)
                 for task in compiled["fifo"].program.tasks]
    for name, bundle in compiled.items():
        assert [(task.payload_cycles, task.release_cycle,
                 task.deadline_cycle)
                for task in bundle.program.tasks] == reference
    config = SimConfig().with_cores(2)
    for name, bundle in compiled.items():
        result = NanosSWRuntime(config).run(
            bundle.program, num_workers=2,
            scenario=bundle.runtime_run("nanos-sw"))
        assert result.tasks_executed == len(shape)
        assert result.stats["scenario.tasks"] == float(len(shape))


@settings(max_examples=10, deadline=None)
@given(payload_graphs, scheduler_names, scenario_seeds)
def test_scenario_is_a_pure_function_of_its_seed(shape, scheduler, seed):
    """Two compilations and executions of the same triple are identical —
    the determinism contract the cache and the sweep harness rely on."""
    first = _compiled(shape, scheduler, seed)
    second = _compiled(shape, scheduler, seed)
    assert [(task.payload_cycles, task.release_cycle, task.deadline_cycle)
            for task in first.program.tasks] == \
        [(task.payload_cycles, task.release_cycle, task.deadline_cycle)
         for task in second.program.tasks]
    stats_a = SerialRuntime(SimConfig()).run(
        first.program, scenario=first.runtime_run("serial")).stats
    stats_b = SerialRuntime(SimConfig()).run(
        second.program, scenario=second.runtime_run("serial")).stats
    assert stats_a == stats_b
