"""Tests for the Picos device model (queues, pipelines, back-pressure)."""

from __future__ import annotations

import pytest

from repro.common.config import PicosCosts
from repro.picos.device import PicosDevice, ReadyTask
from repro.picos.packets import Direction, TaskDependence, TaskDescriptor, \
    encode_descriptor
from repro.sim.engine import Delay, Engine, Put


def make_device(engine, **overrides):
    costs = PicosCosts(**overrides) if overrides else PicosCosts()
    return PicosDevice(engine, costs)


def submit(engine, device, *descriptors):
    """Feed full 48-packet descriptors through the submission queue.

    Descriptors are streamed back to back by a single process because the
    raw Picos interface requires submissions not to interleave — in the full
    system that atomicity is enforced by the Submission Handler.
    """

    def feeder():
        for descriptor in descriptors:
            for packet in encode_descriptor(descriptor):
                yield Put(device.submission_queue, packet)

    return engine.spawn(feeder(), name="feeder")


def drain_ready(device):
    """Pop every complete ready-task triple currently in the ready queue."""
    triples = []
    while len(device.ready_queue) >= 3:
        packets = [device.ready_queue.try_get() for _ in range(3)]
        assert [p.index for p in packets] == [0, 1, 2]
        triples.append(ReadyTask(packets[0].picos_id, packets[0].sw_id))
    return triples


def descriptor_with(sw_id, *deps):
    return TaskDescriptor(sw_id=sw_id, dependences=tuple(deps))


IN = Direction.IN
OUT = Direction.OUT


class TestSubmissionPipeline:
    def test_independent_task_becomes_ready(self):
        engine = Engine()
        device = make_device(engine)
        submit(engine, device, descriptor_with(42, TaskDependence(0x100, OUT)))
        engine.run(until=2_000)
        ready = drain_ready(device)
        assert len(ready) == 1
        assert ready[0].sw_id == 42
        assert device.graph.total_submitted == 1
        assert device.stats.counter("ready_tasks_emitted") == 1

    def test_submission_takes_at_least_48_packet_cycles(self):
        engine = Engine()
        device = make_device(engine)
        submit(engine, device, descriptor_with(1))
        engine.run(until=5_000)
        # 48 packets at one per cycle plus insertion latency.
        assert device.stats.counter("submission_packets") == 48
        assert device.stats.counter("tasks_accepted") == 1

    def test_dependent_task_not_ready_until_retirement(self):
        engine = Engine()
        device = make_device(engine)
        submit(engine, device,
               descriptor_with(0, TaskDependence(0x200, OUT)),
               descriptor_with(1, TaskDependence(0x200, IN)))
        engine.run(until=5_000)
        ready = drain_ready(device)
        assert [r.sw_id for r in ready] == [0]
        picos_id = ready[0].picos_id
        device.graph.mark_running(picos_id)

        def retire():
            yield Put(device.retirement_queue, picos_id)

        engine.spawn(retire())
        engine.run(until=10_000)
        woken = drain_ready(device)
        assert [r.sw_id for r in woken] == [1]
        assert device.graph.total_retired == 1

    def test_sw_id_lookup(self):
        engine = Engine()
        device = make_device(engine)
        submit(engine, device, descriptor_with(99))
        engine.run(until=2_000)
        ready = drain_ready(device)[0]
        assert device.sw_id_of(ready.picos_id) == 99
        from repro.common.errors import PicosError
        with pytest.raises(PicosError):
            device.sw_id_of(12345)

    def test_many_tasks_flow_through(self):
        engine = Engine()
        device = make_device(engine)
        submit(engine, device,
               *(descriptor_with(index, TaskDependence(0x1000 + 64 * index, OUT))
                 for index in range(10)))

        consumed = []

        def consumer():
            while len(consumed) < 10:
                if len(device.ready_queue) >= 3:
                    packets = [device.ready_queue.try_get() for _ in range(3)]
                    consumed.append(packets[0].sw_id)
                yield Delay(5)

        process = engine.spawn(consumer())
        engine.run_until_complete([process])
        assert sorted(consumed) == list(range(10))


class TestCapacityBackpressure:
    def test_reservation_station_limits_in_flight_tasks(self):
        engine = Engine()
        device = make_device(engine, max_in_flight_tasks=4,
                             submission_queue_depth=8)
        submit(engine, device, *(descriptor_with(index) for index in range(6)))
        engine.run(until=20_000)
        assert device.in_flight_tasks == 4
        # Retiring one frees a slot for the next buffered descriptor.
        ready = drain_ready(device)
        first = ready[0]
        device.graph.mark_running(first.picos_id)

        def retire():
            yield Put(device.retirement_queue, first.picos_id)

        engine.spawn(retire())
        engine.run(until=40_000)
        assert device.graph.total_submitted >= 5

    def test_ready_queue_backpressure_defers_emission(self):
        engine = Engine()
        # Tiny ready queue: only one task's packets fit at a time.
        device = make_device(engine, ready_queue_depth=1)
        submit(engine, device, *(descriptor_with(index) for index in range(4)))
        engine.run(until=20_000)
        assert len(device.ready_queue) == 3
        assert len(device._ready_backlog) >= 1
        drained = drain_ready(device)
        engine.run(until=40_000)
        drained += drain_ready(device)
        engine.run(until=60_000)
        drained += drain_ready(device)
        assert len(drained) >= 3


class TestRetirementPipeline:
    def test_retirement_of_chain_wakes_one_at_a_time(self):
        engine = Engine()
        device = make_device(engine)
        submit(engine, device,
               *(descriptor_with(index, TaskDependence(0x500, Direction.INOUT))
                 for index in range(3)))
        engine.run(until=10_000)
        order = []
        for _ in range(3):
            ready = drain_ready(device)
            assert len(ready) == 1
            order.append(ready[0].sw_id)
            device.graph.mark_running(ready[0].picos_id)

            def retire(picos_id=ready[0].picos_id):
                yield Put(device.retirement_queue, picos_id)

            engine.spawn(retire())
            engine.run(until=engine.now + 10_000)
        assert order == [0, 1, 2]
        assert device.graph.in_flight == 0
