"""Tests for the AST invariant linter (repro.analysis).

Covers, per the linter's contract:

* one positive + one negative fixture per rule family,
* pragma suppression (same line and standalone comment line),
* JSON reporter schema round-trip,
* the CLI exit-code contract (0 clean / 1 findings / 2 usage error),
* a self-lint asserting the shipped tree is violation-free.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import Finding, lint_paths, rule_ids
from repro.analysis.cli import main as lint_main
from repro.analysis.core import LintError, normalize_relpath
from repro.analysis.registry import rule, select_rules
from repro.analysis.reporters import (
    REPORT_SCHEMA,
    parse_report,
    render_json,
)
from repro.harness.cli import main as cli_main
from repro.harness.telemetry import COUNTER_NAMES

REPO_ROOT = Path(__file__).resolve().parents[1]

ALL_RULES = ("cache-key", "determinism", "hot-path", "spawn-safety",
             "telemetry")


def lint_snippet(tmp_path: Path, relpath: str, source: str,
                 rules=None):
    """Write ``source`` at ``relpath`` under a scratch root and lint it."""
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    selected = select_rules(list(rules) if rules else None)
    return lint_paths([path], root=tmp_path, rules=selected)


# ---------------------------------------------------------------------- #
# Registry and scoping basics
# ---------------------------------------------------------------------- #
def test_all_five_rule_families_registered():
    assert rule_ids() == sorted(ALL_RULES)


def test_unknown_rule_suggests_known_names():
    with pytest.raises(LintError, match="did you mean 'determinism'"):
        rule("determinsm")


def test_path_scoping_ignores_out_of_scope_files(tmp_path):
    # Entropy in a module outside the deterministic core is fine.
    findings = lint_snippet(
        tmp_path, "src/repro/eval/plots.py",
        "import random\nx = random.random()\n",
        rules=["determinism"])
    assert findings == []


def test_src_prefix_is_normalised(tmp_path):
    flat = lint_snippet(tmp_path, "repro/sim/mod.py", "import random\n",
                        rules=["determinism"])
    nested = lint_snippet(tmp_path, "src/repro/sim/mod.py",
                          "import random\n", rules=["determinism"])
    assert [f.rule for f in flat] == ["determinism"]
    assert [f.file for f in flat] == [f.file for f in nested]


def test_normalize_relpath_outside_root_falls_back_to_name(tmp_path):
    assert normalize_relpath(Path("/etc/hosts"), tmp_path) == "hosts"


# ---------------------------------------------------------------------- #
# determinism rule
# ---------------------------------------------------------------------- #
DETERMINISM_BAD = """\
import random
import time

def jitter(values):
    random.shuffle(values)
    stamp = time.time()
    for item in {1, 2, 3}:
        values.append(item)
    return list(set(values)), stamp
"""

DETERMINISM_GOOD = """\
from repro.scenario.stream import derive_stream

def jitter(values, seed):
    stream = derive_stream(seed, "jitter")
    order = sorted(set(values))
    return [values[i] for i in range(len(order))], stream.random()
"""


def test_determinism_positive(tmp_path):
    findings = lint_snippet(tmp_path, "src/repro/sim/bad.py",
                            DETERMINISM_BAD, rules=["determinism"])
    messages = "\n".join(f.message for f in findings)
    assert len(findings) >= 4
    assert "entropy module 'random'" in messages
    assert "time.time()" in messages
    assert "iteration over a set" in messages
    assert "list() over a set" in messages
    assert all(f.rule == "determinism" for f in findings)
    assert all(f.file == "repro/sim/bad.py" for f in findings)


def test_determinism_negative(tmp_path):
    assert lint_snippet(tmp_path, "src/repro/scenario/good.py",
                        DETERMINISM_GOOD, rules=["determinism"]) == []


# ---------------------------------------------------------------------- #
# hot-path rule
# ---------------------------------------------------------------------- #
HOTPATH_BAD = """\
class Helper:
    def __init__(self):
        self.size = 0

    @property
    def empty(self):
        return self.size == 0

    def _dispatch(self, items):
        if isinstance(items, list) and not self.empty:
            return sum(x for x in items)
        return None
"""

HOTPATH_GOOD = """\
class Helper:
    __slots__ = ("size",)

    def __init__(self):
        self.size = 0

    def _dispatch(self, items):
        total = 0
        for x in items:
            total += x
        return total
"""


def test_hotpath_positive(tmp_path):
    findings = lint_snippet(tmp_path, "src/repro/sim/engine.py",
                            HOTPATH_BAD, rules=["hot-path"])
    messages = "\n".join(f.message for f in findings)
    assert "does not declare __slots__" in messages
    assert "isinstance() in hot function '_dispatch'" in messages
    assert "generator expression in hot function" in messages
    assert "read of property self.empty" in messages


def test_hotpath_negative(tmp_path):
    assert lint_snippet(tmp_path, "src/repro/sim/engine.py",
                        HOTPATH_GOOD, rules=["hot-path"]) == []


def test_hotpath_dataclasses_are_slots_exempt(tmp_path):
    source = ("from dataclasses import dataclass\n"
              "@dataclass\n"
              "class Record:\n"
              "    cycles: int = 0\n")
    assert lint_snippet(tmp_path, "src/repro/runtime/base.py", source,
                        rules=["hot-path"]) == []


# ---------------------------------------------------------------------- #
# cache-key rule
# ---------------------------------------------------------------------- #
CACHEKEY_BAD = """\
def fingerprint(config):
    payload = {name: value for name, value in config.items()}
    token = id(config)
    label = f"cfg-{config['scale']}"
    return payload, token, label
"""

CACHEKEY_GOOD = """\
import json

def fingerprint(config):
    payload = {name: value for name, value in sorted(config.items())}
    if not payload:
        raise ValueError(f"empty config {config!r}")
    return json.dumps(payload, sort_keys=True)
"""


def test_cachekey_positive(tmp_path):
    findings = lint_snippet(tmp_path, "src/repro/harness/hashing.py",
                            CACHEKEY_BAD, rules=["cache-key"])
    messages = "\n".join(f.message for f in findings)
    assert ".items() iterated without sorted()" in messages
    assert "builtin id() is run-dependent" in messages
    assert "f-string on a cache-key path" in messages


def test_cachekey_negative(tmp_path):
    # sorted() iteration and raise-message f-strings are both allowed.
    assert lint_snippet(tmp_path, "src/repro/harness/hashing.py",
                        CACHEKEY_GOOD, rules=["cache-key"]) == []


def test_cachekey_targets_only_named_functions(tmp_path):
    # Outside the targeted functions of spec.py the rule stays silent.
    source = ("def describe(params):\n"
              "    return {k: v for k, v in params.items()}\n")
    assert lint_snippet(tmp_path, "src/repro/scenario/spec.py", source,
                        rules=["cache-key"]) == []
    targeted = ("def context(params):\n"
                "    return {k: v for k, v in params.items()}\n")
    assert len(lint_snippet(tmp_path, "src/repro/scenario/spec.py",
                            targeted, rules=["cache-key"])) == 1


# ---------------------------------------------------------------------- #
# spawn-safety rule
# ---------------------------------------------------------------------- #
SPAWN_BAD = """\
from repro.registry import ensure_workload, register_workload

def install():
    @register_workload("local", tags=())
    def build():
        return None

    ensure_workload("lam", lambda: None)
    register_workload("obj", tags=())(build)
"""

SPAWN_GOOD = """\
from repro.registry import register_workload

@register_workload("global", tags=())
def build():
    return None
"""


def test_spawn_positive(tmp_path):
    findings = lint_snippet(tmp_path, "src/repro/apps/plugin.py",
                            SPAWN_BAD, rules=["spawn-safety"])
    messages = "\n".join(f.message for f in findings)
    assert "@register_workload applied to 'build' inside a function" in messages
    assert "lambda passed to ensure_workload()" in messages
    assert "register_workload(...) applied inside a function" in messages


def test_spawn_negative(tmp_path):
    assert lint_snippet(tmp_path, "src/repro/apps/plugin.py", SPAWN_GOOD,
                        rules=["spawn-safety"]) == []


# ---------------------------------------------------------------------- #
# telemetry rule
# ---------------------------------------------------------------------- #
TELEMETRY_BAD = """\
def run(tracer):
    span = tracer.start_span("phase", "phase")
    tracer.count("cache.hitz")
    tracer.end_span(span)
"""

TELEMETRY_GOOD = """\
def run(tracer):
    with tracer.span("phase", "phase"):
        tracer.count("cache.hits")
"""


def test_telemetry_positive(tmp_path):
    findings = lint_snippet(tmp_path, "src/repro/harness/runner.py",
                            TELEMETRY_BAD, rules=["telemetry"])
    messages = "\n".join(f.message for f in findings)
    assert ".start_span() called outside" in messages
    assert ".end_span() called outside" in messages
    assert "counter name 'cache.hitz' is not declared" in messages


def test_telemetry_negative(tmp_path):
    assert lint_snippet(tmp_path, "src/repro/harness/runner.py",
                        TELEMETRY_GOOD, rules=["telemetry"]) == []


def test_tracer_count_rejects_undeclared_names():
    from repro.harness.telemetry import Tracer

    tracer = Tracer()
    tracer.count("cache.hits")
    assert tracer.counters["cache.hits"] == 1
    with pytest.raises(ValueError, match="COUNTER_NAMES"):
        tracer.count("cache.hitz")


def test_counter_names_cover_all_emitted_literals():
    # The runtime validator and the lint rule share this set; every
    # counter the harness emits must be declared.
    assert {"cache.hits", "cache.misses", "pool.starts",
            "sweep.retries"} <= COUNTER_NAMES


# ---------------------------------------------------------------------- #
# Pragmas
# ---------------------------------------------------------------------- #
def test_pragma_suppresses_on_same_line(tmp_path):
    source = ("import random  # repro: lint-ignore[determinism] -- fixture\n")
    assert lint_snippet(tmp_path, "src/repro/sim/mod.py", source,
                        rules=["determinism"]) == []


def test_pragma_on_comment_line_covers_next_line(tmp_path):
    source = ("# repro: lint-ignore[determinism] -- seeded elsewhere\n"
              "import random\n")
    assert lint_snippet(tmp_path, "src/repro/sim/mod.py", source,
                        rules=["determinism"]) == []


def test_pragma_for_other_rule_does_not_suppress(tmp_path):
    source = "import random  # repro: lint-ignore[hot-path]\n"
    findings = lint_snippet(tmp_path, "src/repro/sim/mod.py", source,
                            rules=["determinism"])
    assert [f.rule for f in findings] == ["determinism"]


def test_bare_pragma_suppresses_every_rule(tmp_path):
    source = "import random  # repro: lint-ignore[]\n"
    assert lint_snippet(tmp_path, "src/repro/sim/mod.py", source,
                        rules=["determinism"]) == []


# ---------------------------------------------------------------------- #
# Reporters
# ---------------------------------------------------------------------- #
def test_json_report_round_trip():
    findings = [
        Finding(rule="determinism", file="repro/sim/bad.py", line=3,
                col=5, message="import of entropy module 'random'",
                hint="use Pcg64Stream"),
        Finding(rule="hot-path", file="repro/sim/engine.py", line=10,
                col=1, message="class 'X' does not declare __slots__"),
    ]
    text = render_json(findings, files_checked=7, rules=list(ALL_RULES))
    document = parse_report(text)
    assert document["schema"] == REPORT_SCHEMA
    assert document["files_checked"] == 7
    assert document["clean"] is False
    assert document["rules"] == sorted(ALL_RULES)
    assert document["findings"] == findings


def test_json_report_rejects_unknown_schema():
    with pytest.raises(LintError, match="unsupported lint report schema"):
        parse_report(json.dumps({"schema": 999, "findings": []}))


# ---------------------------------------------------------------------- #
# CLI exit-code contract
# ---------------------------------------------------------------------- #
def test_cli_exit_zero_on_clean_fixture(tmp_path, capsys):
    path = tmp_path / "src" / "repro" / "sim" / "clean.py"
    path.parent.mkdir(parents=True)
    path.write_text("VALUE = 1\n", encoding="utf-8")
    code = lint_main([str(path), "--root", str(tmp_path)])
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_cli_exit_one_with_findings_and_locations(tmp_path, capsys):
    path = tmp_path / "src" / "repro" / "sim" / "bad.py"
    path.parent.mkdir(parents=True)
    path.write_text("import random\n", encoding="utf-8")
    code = lint_main([str(path), "--root", str(tmp_path)])
    captured = capsys.readouterr()
    assert code == 1
    assert "repro/sim/bad.py:1:1: [determinism]" in captured.out


def test_cli_exit_two_on_unknown_rule(tmp_path, capsys):
    code = lint_main([str(tmp_path), "--rule", "no-such-rule"])
    captured = capsys.readouterr()
    assert code == 2
    assert "unknown lint rule" in captured.err


def test_cli_exit_two_on_missing_path(capsys):
    code = lint_main(["/nonexistent/path/xyz.py"])
    assert code == 2
    assert "no such file" in capsys.readouterr().err


def test_cli_exit_two_on_syntax_error(tmp_path, capsys):
    path = tmp_path / "src" / "repro" / "sim" / "broken.py"
    path.parent.mkdir(parents=True)
    path.write_text("def broken(:\n", encoding="utf-8")
    code = lint_main([str(path), "--root", str(tmp_path)])
    assert code == 2
    assert "cannot parse" in capsys.readouterr().err


def test_cli_json_format(tmp_path, capsys):
    path = tmp_path / "src" / "repro" / "sim" / "bad.py"
    path.parent.mkdir(parents=True)
    path.write_text("import uuid\n", encoding="utf-8")
    code = lint_main([str(path), "--root", str(tmp_path), "--format",
                      "json"])
    assert code == 1
    document = parse_report(capsys.readouterr().out)
    assert document["clean"] is False
    assert document["findings"][0].rule == "determinism"


def test_harness_cli_lint_subcommand(capsys):
    # ``repro lint`` delegates to the same runner as python -m
    # repro.analysis; --list-rules keeps this hermetic.
    code = cli_main(["lint", "--list-rules"])
    captured = capsys.readouterr()
    assert code == 0
    for rule_id in ALL_RULES:
        assert rule_id in captured.out


def test_changed_and_paths_are_mutually_exclusive(tmp_path, capsys):
    code = lint_main([str(tmp_path), "--changed", "HEAD"])
    assert code == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_changed_mode_outside_git_tree(tmp_path, capsys):
    code = lint_main(["--changed", "HEAD", "--root", str(tmp_path)])
    assert code == 2
    assert "git work tree" in capsys.readouterr().err


# ---------------------------------------------------------------------- #
# Self-lint: the shipped tree is violation-free
# ---------------------------------------------------------------------- #
def test_shipped_tree_is_violation_free():
    paths = [REPO_ROOT / "src" / "repro", REPO_ROOT / "examples"]
    findings = lint_paths([p for p in paths if p.exists()], root=REPO_ROOT)
    assert findings == [], "\n".join(f.describe() for f in findings)
