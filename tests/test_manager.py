"""Tests for Picos Manager: submission handling, work fetch, retirement."""

from __future__ import annotations

import pytest

from repro.common.config import PicosCosts
from repro.common.errors import ProtocolError
from repro.manager.manager import ManagerError, PicosManager
from repro.manager.submission import PendingSubmission
from repro.picos.device import PicosDevice
from repro.picos.packets import (
    Direction,
    TaskDependence,
    TaskDescriptor,
    encode_nonzero_packets,
)
from repro.sim.engine import Delay, Engine


def build(num_cores=2, **cost_overrides):
    engine = Engine()
    costs = PicosCosts(**cost_overrides) if cost_overrides else PicosCosts()
    device = PicosDevice(engine, costs)
    manager = PicosManager(engine, device, num_cores, costs)
    return engine, device, manager


def feed_descriptor(manager, core_id, descriptor):
    """Announce and buffer one descriptor's non-zero packets from a core."""
    packets = encode_nonzero_packets(descriptor)
    assert manager.announce_submission(core_id, len(packets))
    for offset in range(0, len(packets), 3):
        assert manager.submit_packets(core_id, packets[offset:offset + 3])
    return packets


def run_for(engine, cycles):
    def idler():
        yield Delay(cycles)

    process = engine.spawn(idler(), name="idler")
    engine.run_until_complete([process])


def drain_core_ready(manager, core_id):
    entries = []
    queue = manager.core_ready_queue(core_id)
    while queue.valid:
        entries.append(queue.try_get())
    return entries


class TestSubmissionHandler:
    def test_zero_padding_completes_48_packets(self):
        engine, device, manager = build()
        descriptor = TaskDescriptor(
            sw_id=5, dependences=(TaskDependence(0x100, Direction.OUT),)
        )
        feed_descriptor(manager, 0, descriptor)
        run_for(engine, 3_000)
        handler = manager.submission_handler
        assert handler.stats.counter("descriptors_forwarded") == 1
        assert handler.stats.counter("zero_packets_padded") == 48 - 6
        assert device.stats.counter("submission_packets") == 48
        assert device.graph.total_submitted == 1

    def test_submissions_from_different_cores_do_not_interleave(self):
        engine, device, manager = build()
        first = TaskDescriptor(sw_id=1,
                               dependences=(TaskDependence(0x100, Direction.OUT),))
        second = TaskDescriptor(sw_id=2,
                                dependences=(TaskDependence(0x200, Direction.OUT),))
        feed_descriptor(manager, 0, first)
        feed_descriptor(manager, 1, second)
        run_for(engine, 6_000)
        # Both descriptors decoded correctly means no packet interleaving.
        assert device.graph.total_submitted == 2
        assert sorted(device._sw_ids.values()) == [1, 2]
        assert manager.submission_handler.arbiter.sequences_completed == 2

    def test_announcement_validation(self):
        with pytest.raises(ProtocolError):
            PendingSubmission(core_id=0, nonzero_packets=2)
        with pytest.raises(ProtocolError):
            PendingSubmission(core_id=0, nonzero_packets=49)
        with pytest.raises(ProtocolError):
            PendingSubmission(core_id=0, nonzero_packets=7)

    def test_announce_overflow_reports_failure_and_error_flag(self):
        engine, device, manager = build()
        # The per-core announcement queue holds two outstanding requests.
        assert manager.announce_submission(0, 3)
        assert manager.announce_submission(0, 3)
        assert not manager.announce_submission(0, 3)
        assert ManagerError.SUBMISSION_OVERFLOW in manager.error_register
        manager.clear_errors()
        assert manager.error_register is ManagerError.NONE

    def test_packet_buffer_overflow_is_non_blocking(self):
        engine, device, manager = build()
        manager.announce_submission(0, 48)
        accepted = 0
        while manager.submit_packet(0, 0xAB):
            accepted += 1
            assert accepted < 1000
        assert accepted >= 3
        assert ManagerError.SUBMISSION_OVERFLOW in manager.error_register

    def test_submit_three_packets_is_all_or_nothing(self):
        engine, device, manager = build()
        manager.announce_submission(0, 48)
        buffer = manager.submission_handler._buffers[0]
        while buffer.capacity - len(buffer) >= 3:
            assert manager.submit_packets(0, (1, 2, 3))
        before = len(buffer)
        assert not manager.submit_packets(0, (4, 5, 6))
        assert len(buffer) == before

    def test_core_bounds_checked(self):
        engine, device, manager = build(num_cores=2)
        with pytest.raises(ProtocolError):
            manager.submit_packet(5, 0)
        with pytest.raises(ProtocolError):
            manager.retirement_queue(7)


class TestWorkFetchPath:
    def _submit_ready_task(self, engine, manager, sw_id=11):
        descriptor = TaskDescriptor(
            sw_id=sw_id, dependences=(TaskDependence(0x100 + sw_id * 64,
                                                     Direction.OUT),)
        )
        feed_descriptor(manager, 0, descriptor)
        run_for(engine, 3_000)

    def test_ready_task_routed_to_requesting_core(self):
        engine, device, manager = build()
        self._submit_ready_task(engine, manager)
        assert manager.request_ready_task(1)
        run_for(engine, 1_000)
        entries = drain_core_ready(manager, 1)
        assert len(entries) == 1
        assert entries[0].sw_id == 11
        assert drain_core_ready(manager, 0) == []

    def test_requests_served_in_chronological_order(self):
        engine, device, manager = build()
        # Requests arrive before any ready task exists.
        assert manager.request_ready_task(1)
        assert manager.request_ready_task(0)
        self._submit_ready_task(engine, manager, sw_id=21)
        self._submit_ready_task(engine, manager, sw_id=22)
        run_for(engine, 3_000)
        first = drain_core_ready(manager, 1)
        second = drain_core_ready(manager, 0)
        assert [e.sw_id for e in first] == [21]
        assert [e.sw_id for e in second] == [22]

    def test_packet_encoder_counts_entries(self):
        engine, device, manager = build()
        self._submit_ready_task(engine, manager)
        run_for(engine, 1_000)
        assert manager.work_fetch.encoder.stats.counter(
            "ready_entries_encoded") == 1

    def test_notify_task_started_marks_graph(self):
        engine, device, manager = build()
        self._submit_ready_task(engine, manager)
        manager.request_ready_task(0)
        run_for(engine, 1_000)
        entry = drain_core_ready(manager, 0)[0]
        manager.notify_task_started(entry.picos_id)
        from repro.picos.dependence import TaskState
        assert device.graph.task(entry.picos_id).state is TaskState.RUNNING

    def test_routing_queue_overflow_returns_failure(self):
        engine, device, manager = build()
        accepted = 0
        while manager.request_ready_task(0):
            accepted += 1
            assert accepted < 1000
        assert ManagerError.READY_OVERFLOW in manager.error_register


class TestRetirementPath:
    def test_retirements_reach_picos_via_round_robin(self):
        engine, device, manager = build()
        descriptor = TaskDescriptor(
            sw_id=1, dependences=(TaskDependence(0x900, Direction.INOUT),)
        )
        dependent = TaskDescriptor(
            sw_id=2, dependences=(TaskDependence(0x900, Direction.INOUT),)
        )
        feed_descriptor(manager, 0, descriptor)
        feed_descriptor(manager, 0, dependent)
        run_for(engine, 6_000)
        manager.request_ready_task(0)
        run_for(engine, 1_000)
        entry = drain_core_ready(manager, 0)[0]
        manager.notify_task_started(entry.picos_id)
        assert manager.retirement_queue(0).try_put(entry.picos_id)
        run_for(engine, 2_000)
        assert device.graph.total_retired == 1
        # The dependent task became ready and can now be fetched.
        manager.request_ready_task(1)
        run_for(engine, 1_000)
        assert [e.sw_id for e in drain_core_ready(manager, 1)] == [2]

    def test_manager_requires_positive_core_count(self):
        engine = Engine()
        device = PicosDevice(engine, PicosCosts())
        with pytest.raises(ProtocolError):
            PicosManager(engine, device, 0, PicosCosts())
