"""Tests for the engine microbenchmark and the BENCH_engine.json trajectory."""

from __future__ import annotations

import json

import pytest

from repro.common.config import SimConfig
from repro.eval.experiments import benchmark_cases
from repro.harness import ExperimentEngine
from repro.harness.bench import (
    PerfTrajectory,
    measure_case,
    measure_synthetic,
    run_engine_bench,
)
from repro.harness.cli import main
from repro.harness.runner import run_cases

QUICK_CONFIG = SimConfig()


def small_cases():
    return benchmark_cases(quick=True, scale=0.05)[:2]


class TestMeasureSynthetic:
    def test_reports_throughput(self):
        result = measure_synthetic(5_000)
        assert result["events"] > 0
        assert result["seconds"] > 0
        assert result["events_per_sec"] > 0

    def test_rejects_non_positive_event_count(self):
        from repro.common.errors import EvaluationError
        with pytest.raises(EvaluationError):
            measure_synthetic(0)


class TestMeasureCase:
    def test_times_one_real_case(self):
        entry = measure_case(QUICK_CONFIG, num_workers=2, case_index=1)
        assert entry["case"] == benchmark_cases(quick=True)[1].key
        assert entry["seconds"] > 0
        assert entry["simulated_cycles"] > 0


class TestRunEngineBench:
    def test_entry_shape(self):
        entry = run_engine_bench(num_events=5_000, include_case=False)
        assert entry["kind"] == "microbench"
        assert entry["version"]
        synthetic = entry["synthetic"]
        assert synthetic["events_per_sec"] > 0
        assert synthetic["num_events"] > 0
        assert synthetic["repeats"] == 3
        assert "figure9_case" not in entry


class TestPerfTrajectory:
    def test_append_and_read_back(self, tmp_path):
        trajectory = PerfTrajectory(tmp_path / "BENCH_engine.json")
        assert trajectory.entries() == []
        assert trajectory.last() is None
        trajectory.append({"kind": "microbench", "n": 1})
        trajectory.append({"kind": "sweep", "n": 2})
        entries = trajectory.entries()
        assert [e["n"] for e in entries] == [1, 2]
        assert trajectory.last()["n"] == 2
        assert trajectory.last(kind="microbench")["n"] == 1

    def test_document_is_valid_json_with_schema(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        PerfTrajectory(path).append({"kind": "microbench"})
        document = json.loads(path.read_text())
        assert document["schema"] == 1
        assert len(document["entries"]) == 1

    def test_corrupt_file_warns_and_reseeds(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text("{not json")
        trajectory = PerfTrajectory(path)
        with pytest.warns(UserWarning, match="re-seeding"):
            assert trajectory.entries() == []
        with pytest.warns(UserWarning, match="re-seeding"):
            trajectory.append({"kind": "microbench", "n": 1})
        # Re-seeded: the document is healthy again, no further warning.
        assert trajectory.entries() == [{"kind": "microbench", "n": 1}]
        assert json.loads(path.read_text())["schema"] == 1

    def test_empty_file_warns_and_reseeds(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text("")
        trajectory = PerfTrajectory(path)
        with pytest.warns(UserWarning, match="empty"):
            assert trajectory.entries() == []
        with pytest.warns(UserWarning):
            trajectory.append({"kind": "sweep", "n": 1})
        assert len(trajectory.entries()) == 1

    def test_truncated_document_warns_and_recovers(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        healthy = PerfTrajectory(path)
        healthy.append({"kind": "microbench", "n": 1})
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # simulate a torn write
        with pytest.warns(UserWarning, match="truncated"):
            assert PerfTrajectory(path).entries() == []

    def test_malformed_entries_are_dropped_with_warning(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps(
            {"schema": 1,
             "entries": [{"kind": "microbench", "n": 1}, "junk", 7]}
        ))
        trajectory = PerfTrajectory(path)
        with pytest.warns(UserWarning, match="malformed"):
            entries = trajectory.entries()
        assert entries == [{"kind": "microbench", "n": 1}]
        with pytest.warns(UserWarning):
            assert trajectory.last()["n"] == 1

    def test_entries_not_a_list_warns(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps({"schema": 1, "entries": "oops"}))
        with pytest.warns(UserWarning, match="not a list"):
            assert PerfTrajectory(path).entries() == []

    def test_missing_file_does_not_warn(self, tmp_path, recwarn):
        trajectory = PerfTrajectory(tmp_path / "BENCH_engine.json")
        assert trajectory.entries() == []
        assert trajectory.last() is None
        assert not [w for w in recwarn.list
                    if issubclass(w.category, UserWarning)]

    def test_record_sweep_skips_empty_timings(self, tmp_path):
        trajectory = PerfTrajectory(tmp_path / "BENCH_engine.json")
        assert trajectory.record_sweep("figure9", {}) is None
        assert not trajectory.path.exists()

    def test_record_sweep_entry_contents(self, tmp_path):
        trajectory = PerfTrajectory(tmp_path / "BENCH_engine.json")
        trajectory.record_sweep("figure9", {"b/x": 1.5, "a/y": 0.5})
        entry = trajectory.last()
        assert entry["kind"] == "sweep"
        assert entry["experiment"] == "figure9"
        assert entry["cases"] == {"a/y": 0.5, "b/x": 1.5}
        assert entry["total_seconds"] == pytest.approx(2.0)


class TestRunnerTimings:
    def test_timings_populated_for_simulated_cases(self):
        cases = small_cases()
        timings = {}
        runs = run_cases(QUICK_CONFIG, cases, num_workers=2, timings=timings)
        assert len(runs) == len(cases)
        assert sorted(timings) == sorted(case.key for case in cases)
        assert all(seconds > 0 for seconds in timings.values())

    def test_cache_hits_are_not_timed(self, tmp_path):
        from repro.harness.cache import ResultCache
        cases = small_cases()
        cache = ResultCache(tmp_path / "cache")
        run_cases(QUICK_CONFIG, cases, num_workers=2, cache=cache)
        timings = {}
        run_cases(QUICK_CONFIG, cases, num_workers=2, cache=cache,
                  timings=timings)
        assert timings == {}


class TestExperimentEngineTrajectory:
    def test_sweep_records_trajectory_entry(self, tmp_path):
        bench_path = tmp_path / "BENCH_engine.json"
        engine = ExperimentEngine(config=QUICK_CONFIG,
                                  bench_path=bench_path)
        cases = small_cases()
        engine.run("figure9", cases=cases, num_workers=2)
        entry = PerfTrajectory(bench_path).last(kind="sweep")
        assert entry is not None
        assert sorted(entry["cases"]) == sorted(c.key for c in cases)
        assert engine.case_timings.keys() == entry["cases"].keys()
        # A memoised re-run does not append a second entry, and the stale
        # timings of the previous sweep are not attributed to it.
        engine.run("figure9", cases=cases, num_workers=2)
        assert len(PerfTrajectory(bench_path).entries()) == 1
        assert engine.case_timings == {}


class TestBenchCli:
    def test_bench_subcommand_appends_to_trajectory(self, tmp_path, capsys):
        output = tmp_path / "BENCH_engine.json"
        code = main(["bench", "--events", "2000", "--no-case",
                     "--output", str(output)])
        assert code == 0
        captured = capsys.readouterr()
        assert "events/sec" in captured.out
        assert "recorded in" in captured.err
        entries = PerfTrajectory(output).entries()
        assert len(entries) == 1
        assert entries[0]["kind"] == "microbench"

    def test_bench_subcommand_json_format(self, tmp_path, capsys):
        code = main(["bench", "--events", "2000", "--no-case",
                     "--format", "json", "--output", "-"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "microbench"

    def test_bench_json_stdout_stays_parseable_when_recording(
            self, tmp_path, capsys):
        """--format json must emit pure JSON even while appending a file."""
        output = tmp_path / "BENCH_engine.json"
        code = main(["bench", "--events", "2000", "--no-case",
                     "--format", "json", "--output", str(output)])
        assert code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["kind"] == "microbench"
        assert "recorded in" in captured.err

    def test_bench_script_delegates_to_cli(self, tmp_path, capsys):
        import importlib.util
        from pathlib import Path
        script = (Path(__file__).resolve().parent.parent / "benchmarks"
                  / "bench_engine.py")
        spec = importlib.util.spec_from_file_location("bench_engine", script)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        output = tmp_path / "BENCH_engine.json"
        code = module.main(["--events", "2000", "--no-case",
                            "--output", str(output)])
        assert code == 0
        assert len(PerfTrajectory(output).entries()) == 1

    def test_run_bench_out_records_sweep(self, tmp_path, capsys):
        bench_path = tmp_path / "BENCH_engine.json"
        code = main(["run", "figure9", "--quick", "--scale", "0.05",
                     "--no-cache", "--quiet",
                     "--bench-out", str(bench_path)])
        assert code == 0
        entry = PerfTrajectory(bench_path).last(kind="sweep")
        assert entry is not None
        assert entry["cases"]
