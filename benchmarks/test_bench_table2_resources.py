"""Table II — FPGA resource usage breakdown of the prototype SoC.

Regenerates the resource table from the analytic area model and checks the
paper's headline area claim: the whole task-scheduling subsystem (Picos,
Picos Manager and the eight Delegates) occupies less than 2% of the SoC.
"""

from __future__ import annotations

from repro.eval import resources_report, table2_resources

from conftest import write_result


def test_table2_resource_breakdown(benchmark, sim_config):
    entries = benchmark.pedantic(lambda: table2_resources(sim_config),
                                 rounds=1, iterations=1)
    report = resources_report(entries)
    print("\nTable II — resource usage breakdown (FPGA cells)\n" + report)
    write_result("table2_resources.txt", report)

    by_module = {entry.module: entry for entry in entries}
    assert set(by_module) == {"top", "Core", "fpuOpt", "dcache", "icache",
                              "SSystem"}
    top = by_module["top"]
    core = by_module["Core"]
    ssystem = by_module["SSystem"]
    # Same orderings and magnitudes as the paper's table.
    assert ssystem.fraction_of_top < 0.02
    assert 0.10 < core.fraction_of_top < 0.14
    assert by_module["fpuOpt"].cells < core.cells
    assert by_module["icache"].cells < by_module["dcache"].cells
    assert 300_000 < top.cells < 450_000
    assert 5_000 < ssystem.cells < 9_000
