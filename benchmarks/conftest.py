"""Shared infrastructure for the paper-reproduction benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section and prints the corresponding rows/series.  The Figure 8, 9, 10 and
headline benchmarks all consume the same 37-input sweep, which is expensive,
so it is computed once per session through the
:class:`repro.harness.ExperimentEngine` — the same execution path as
``python -m repro run`` — and optionally fanned out over a process pool
and/or served from the on-disk result cache.

Environment knobs:

* ``REPRO_QUICK=1``   — run a reduced (but still representative) input set.
* ``REPRO_WORKERS=N`` — override the number of simulated cores (default 8).
* ``REPRO_JOBS=N``    — fan the sweep out over N host processes (default 1).
* ``REPRO_CACHE_DIR`` — serve repeated sweeps from this result cache
  (default: no caching, so benchmark numbers are always freshly measured).

Rendered tables are also written to ``benchmarks/results/`` so the numbers
can be archived next to ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.common.config import SimConfig
from repro.harness import ExperimentEngine

RESULTS_DIR = Path(__file__).parent / "results"


def quick_mode() -> bool:
    """True when the reduced sweep was requested via REPRO_QUICK."""
    return os.environ.get("REPRO_QUICK", "0") not in ("0", "", "false")


def worker_count() -> int:
    """Simulated worker cores used by the sweep (the paper uses eight)."""
    return int(os.environ.get("REPRO_WORKERS", "8"))


def job_count() -> int:
    """Host processes the sweep fans out over (default: in-process)."""
    return int(os.environ.get("REPRO_JOBS", "1"))


def cache_dir():
    """Result-cache directory, or None when caching is off (the default)."""
    value = os.environ.get("REPRO_CACHE_DIR", "")
    return Path(value) if value else None


def write_result(name: str, text: str) -> Path:
    """Persist a rendered table under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def sim_config() -> SimConfig:
    """The paper's machine: eight in-order cores, Picos integrated."""
    return SimConfig().with_cores(worker_count())


@pytest.fixture(scope="session")
def harness_engine(sim_config) -> ExperimentEngine:
    """One engine per session so every benchmark shares its sweep/cache."""
    return ExperimentEngine(config=sim_config, jobs=job_count(),
                            cache_dir=cache_dir())


@pytest.fixture(scope="session")
def benchmark_sweep(harness_engine):
    """The Figure 9 sweep shared by the Figure 8/9/10/headline benchmarks."""
    return harness_engine.run("figure9", quick=quick_mode(),
                              num_workers=worker_count())
