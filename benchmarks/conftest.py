"""Shared infrastructure for the paper-reproduction benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
section and prints the corresponding rows/series.  The Figure 8, 9, 10 and
headline benchmarks all consume the same 37-input sweep, which is expensive,
so it is computed once per session and cached here.

Environment knobs:

* ``REPRO_QUICK=1``  — run a reduced (but still representative) input set.
* ``REPRO_WORKERS=N`` — override the number of worker cores (default 8).

Rendered tables are also written to ``benchmarks/results/`` so the numbers
can be archived next to ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.common.config import SimConfig
from repro.eval import figure9_benchmarks

RESULTS_DIR = Path(__file__).parent / "results"


def quick_mode() -> bool:
    """True when the reduced sweep was requested via REPRO_QUICK."""
    return os.environ.get("REPRO_QUICK", "0") not in ("0", "", "false")


def worker_count() -> int:
    """Worker cores used by the sweep (the paper uses eight)."""
    return int(os.environ.get("REPRO_WORKERS", "8"))


def write_result(name: str, text: str) -> Path:
    """Persist a rendered table under ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="session")
def sim_config() -> SimConfig:
    """The paper's machine: eight in-order cores, Picos integrated."""
    return SimConfig().with_cores(worker_count())


@pytest.fixture(scope="session")
def benchmark_sweep(sim_config):
    """The Figure 9 sweep shared by the Figure 8/9/10/headline benchmarks."""
    return figure9_benchmarks(sim_config, quick=quick_mode(),
                              num_workers=worker_count())
