#!/usr/bin/env python
"""Microbenchmark of the discrete-event simulation engine.

Measures events/sec of the engine loop on a synthetic 1M-event workload
(a deterministic mix of pure-Delay timers and blocking queue traffic),
times one real Figure 9 benchmark case, and appends the measurement to the
``benchmarks/results/BENCH_engine.json`` perf trajectory; regressions are
found by comparing the last entries of that trajectory.

This script is a thin wrapper over ``python -m repro bench`` (the report
and trajectory format live in :mod:`repro.harness.bench` /
:mod:`repro.harness.cli`); it only changes the default output location to
the committed trajectory file and makes the script runnable straight from
a checkout.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine.py
    python benchmarks/bench_engine.py --events 200000 --json
    python benchmarks/bench_engine.py --output /tmp/BENCH_engine.json

The script always exits 0 when the measurement completes (it is a
non-gating CI step).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Allow running straight from a checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.harness.cli import main as cli_main  # noqa: E402

#: Default trajectory location: committed next to the rendered tables.
DEFAULT_OUTPUT = Path(__file__).resolve().parent / "results" / "BENCH_engine.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=1_000_000,
                        help="synthetic workload size (default 1000000)")
    parser.add_argument("--no-case", action="store_true",
                        help="skip the timed Figure 9 case")
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per measurement, best-of (default 3)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="trajectory JSON to append to "
                             "(default benchmarks/results/BENCH_engine.json; "
                             "'-' disables)")
    parser.add_argument("--json", action="store_true",
                        help="print the raw entry as JSON")
    args = parser.parse_args(argv)

    bench_argv = [
        "bench",
        "--events", str(args.events),
        "--repeats", str(args.repeats),
        "--output", str(args.output),
    ]
    if args.no_case:
        bench_argv.append("--no-case")
    if args.json:
        bench_argv += ["--format", "json"]
    return cli_main(bench_argv)


if __name__ == "__main__":
    raise SystemExit(main())
