"""Table I — per-instruction behaviour and cost of the ISA extension.

Table I of the paper defines the seven custom task-scheduling instructions.
This benchmark measures the simulated cycle cost of each instruction on the
integrated SoC (issue + delegate + manager handshake), confirming that the
whole software-visible path is a handful of cycles — the property that
separates the tightly-integrated design from the MMIO/AXI baseline, whose
equivalent interactions cost hundreds of cycles each.
"""

from __future__ import annotations

from repro.common.config import SimConfig
from repro.cpu.rocc import RoccCommand, TaskSchedulingFunct
from repro.cpu.soc import SoC
from repro.eval.reporting import format_table

from conftest import write_result


def _measure_instruction_cost(funct: TaskSchedulingFunct) -> int:
    """Simulated cycles from issue to response for one instruction."""
    soc = SoC(SimConfig().with_cores(1))
    command = RoccCommand(funct, rs1_value=3 if funct.uses_rs1 else 0)

    def program():
        yield from soc.core(0).rocc(command)

    worker = soc.spawn_worker(0, program(), name="instr")
    soc.run([worker])
    return soc.now


def test_table1_instruction_costs(benchmark):
    rows = []

    def run():
        rows.clear()
        for funct in TaskSchedulingFunct:
            cycles = _measure_instruction_cost(funct)
            rows.append([funct.name.title().replace("_", " "),
                         "blocking" if funct.is_blocking else "non-blocking",
                         cycles])
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(["Instruction", "Semantics", "Cycles (integrated)"],
                         rows)
    print("\nTable I — custom task-scheduling instructions\n" + table)
    write_result("table1_instructions.txt", table)
    assert len(rows) == 7
    # Every instruction completes within a few cycles on the RoCC path.
    assert all(cycles <= 20 for _, _, cycles in rows)
