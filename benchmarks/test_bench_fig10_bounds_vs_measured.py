"""Figure 10 — measured speedups against the MTT-derived bounds.

Overlays the measured speedup of every benchmark run (Figure 9 sweep) on the
MTT bound curve of its platform, per Figure 10 of the paper.  The key
property asserted is that the bound really is a bound: no measured point may
exceed the Equation-1 curve of its platform (within a small numerical
tolerance), while the fastest Phentos points approach it.
"""

from __future__ import annotations

from repro.eval import (
    default_task_sizes,
    figure6_mtt_bounds,
    figure10_bounds_vs_measured,
    format_table,
)

from conftest import quick_mode, write_result


def test_figure10_measured_versus_bounds(benchmark, sim_config,
                                         benchmark_sweep):
    num_tasks = 50 if quick_mode() else 120
    comparisons = {}

    def run():
        bounds = figure6_mtt_bounds(
            sim_config, task_sizes=default_task_sizes(2, 7, 6),
            num_tasks=num_tasks,
        )
        comparisons.clear()
        comparisons.update(
            figure10_bounds_vs_measured(benchmark_sweep, sim_config, bounds)
        )
        return comparisons

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for platform, comparison in comparisons.items():
        top = max(speedup for _, speedup in comparison.measured)
        violations = comparison.violations(tolerance=1.15)
        rows.append([platform, f"{top:.2f}", len(comparison.measured),
                     len(violations)])
    report = format_table(
        ["platform", "best measured speedup", "points", "bound violations"],
        rows,
    )
    print("\nFigure 10 — measured speedups versus MTT bounds\n" + report)
    write_result("figure10_bounds_vs_measured.txt", report)

    # The bound is derived from the fully-serialised Task-Chain lifetime
    # overhead; a real run pipelines submission/fetch/retire across cores, so
    # a small fraction of scheduling-bound points may sit slightly above the
    # analytic curve (they do in the paper's Figure 10 as well).  The strong
    # claims checked here: nothing exceeds the core count, the vast majority
    # of points respect the bound, and the saturated (coarse-task) region is
    # never exceeded.
    for comparison in comparisons.values():
        assert all(speedup <= 8.0 for _, speedup in comparison.measured)
        violating = comparison.violations(tolerance=1.15)
        assert len(violating) <= max(1, len(comparison.measured) // 4)
        coarse_violations = [v for v in violating if v[0] > 1e5]
        assert coarse_violations == []
    # Phentos gets close to saturation on coarse inputs; Nanos-SW never does.
    phentos_best = max(s for _, s in comparisons["phentos"].measured)
    nanos_sw_best = max(s for _, s in comparisons["nanos-sw"].measured)
    assert phentos_best > 4.5
    assert nanos_sw_best < phentos_best
