"""Headline numbers — the geometric-mean and maximum speedups of the paper.

From the Figure 9 sweep, computes the statistics quoted in the abstract and
conclusion: Nanos-RV is ~2.13x faster than Nanos-SW on average (geometric
mean), Phentos ~13.19x; maximum speedups over serial reach ~5.6–5.7x on
eight cores; Phentos regresses on at most one input.  The asserted ranges
are deliberately wide — the substrate is a simulator, not the authors'
FPGA — but the ordering and rough factors must hold.
"""

from __future__ import annotations

from repro.eval import headline_report, headline_summary

from conftest import quick_mode, write_result


def test_headline_summary(benchmark, benchmark_sweep):
    summary = benchmark.pedantic(lambda: headline_summary(benchmark_sweep),
                                 rounds=1, iterations=1)
    report = headline_report(summary)
    print("\nHeadline summary (paper abstract / conclusion)\n" + report)
    write_result("headline_summary.txt", report)

    # Nanos-RV vs Nanos-SW: paper reports 2.13x geometric mean.
    assert 1.5 < summary.geomean_nanos_rv_vs_sw < 3.5
    # Phentos vs Nanos-SW: paper reports 13.19x; the quick sweep
    # over-weights fine-grained inputs, so allow a wider band there.
    upper = 60.0 if quick_mode() else 40.0
    assert 6.0 < summary.geomean_phentos_vs_sw < upper
    # Phentos vs Nanos-RV: paper reports 6.20x.
    assert 3.0 < summary.geomean_phentos_vs_rv < 25.0
    # Maximum speedups over serial on eight cores (paper: 5.62x / 5.72x).
    assert 3.5 < summary.max_speedup_vs_serial_nanos_rv <= 8.0
    assert 4.5 < summary.max_speedup_vs_serial_phentos <= 8.0
    assert summary.max_speedup_vs_serial_phentos >= \
        summary.max_speedup_vs_serial_nanos_rv
    # Fine-grained inputs give Phentos a >100x edge somewhere (paper: 146x).
    assert summary.max_speedup_phentos_vs_sw > 50.0
    # Win/regression counts mirror the paper's 34..36 out of 37.
    assert summary.nanos_rv_wins_vs_sw >= summary.num_cases - 3
    assert summary.phentos_wins_vs_sw >= summary.num_cases - 1
    assert summary.phentos_regressions_vs_sw <= 1
