"""Figure 8 — speedups as a function of mean task granularity.

Re-expresses the Figure 9 sweep as the three panels of Figure 8: speedup of
each platform over (a) the serial execution, (b) Nanos-SW and (c) Nanos-RV,
plotted against the mean task size of the input.  The asserted shape is the
paper's: the advantage of the hardware-assisted runtimes is largest for
fine-grained tasks and decays as granularity grows.
"""

from __future__ import annotations

from repro.common.stats import geometric_mean
from repro.eval import figure8_granularity, granularity_report

from conftest import write_result


def test_figure8_speedup_vs_granularity(benchmark, benchmark_sweep):
    points = benchmark.pedantic(
        lambda: figure8_granularity(benchmark_sweep), rounds=1, iterations=1
    )
    report = granularity_report(points)
    print("\nFigure 8 — speedup versus mean task size\n" + report)
    write_result("figure8_granularity.txt", report)

    phentos = [p for p in points if p.runtime == "phentos"]
    fine = [p for p in phentos if p.task_size_cycles < 3_000]
    coarse = [p for p in phentos if p.task_size_cycles > 1e5]
    assert fine and coarse

    # Panel (b): Phentos' advantage over Nanos-SW shrinks with granularity.
    fine_gain = geometric_mean([p.speedup_vs_nanos_sw for p in fine])
    coarse_gain = geometric_mean([p.speedup_vs_nanos_sw for p in coarse])
    assert fine_gain > 10.0
    assert coarse_gain < 3.0
    assert fine_gain > 3 * coarse_gain

    # Panel (c): the same holds against Nanos-RV, with a smaller gap.
    fine_vs_rv = geometric_mean([p.speedup_vs_nanos_rv for p in fine])
    coarse_vs_rv = geometric_mean([p.speedup_vs_nanos_rv for p in coarse])
    assert fine_vs_rv > coarse_vs_rv

    # Panel (a): speedups over serial never exceed the core count and only
    # coarse tasks let the software runtimes approach it.
    assert all(p.speedup_vs_serial <= 8.0 for p in points)
    nanos_sw_fine = [p for p in points
                     if p.runtime == "nanos-sw" and p.task_size_cycles < 3_000]
    assert all(p.speedup_vs_serial < 1.0 for p in nanos_sw_fine)
