"""Figure 7 — lifetime Task Scheduling overhead per platform and workload.

Regenerates the Figure 7 matrix: the mean per-task scheduling overhead (in
Rocket-Chip cycles) of Phentos, Nanos-RV, Nanos-AXI and Nanos-SW on the
Task-Free and Task-Chain micro-benchmarks with 1 and 15 dependences.  The
measured values are printed next to the paper's numbers; the expected shape
is Phentos a few hundred cycles, Nanos-RV ~12–13k, Nanos-AXI ~13–19k and
Nanos-SW ~25k–99k growing with the dependence count.
"""

from __future__ import annotations

from repro.eval import figure7_overhead, overhead_report

from conftest import quick_mode, write_result


def test_figure7_lifetime_overhead(benchmark, sim_config):
    num_tasks = 60 if quick_mode() else 120
    measurements = []

    def run():
        measurements.clear()
        measurements.extend(figure7_overhead(sim_config, num_tasks=num_tasks))
        return measurements

    benchmark.pedantic(run, rounds=1, iterations=1)
    report = overhead_report(measurements)
    print("\nFigure 7 — lifetime Task Scheduling overhead (cycles per task)\n"
          + report)
    write_result("figure7_overhead.txt", report)

    by_key = {(m.platform, m.workload): m.cycles_per_task
              for m in measurements}
    # Shape checks mirroring the paper's findings.
    assert by_key[("phentos", "Task-Free 1 dep")] < 1_000
    assert by_key[("nanos-rv", "Task-Free 1 dep")] > 8_000
    assert by_key[("nanos-sw", "Task-Free 15 deps")] > \
        2 * by_key[("nanos-sw", "Task-Free 1 dep")]
    # Nanos-RV reduces the Nanos-SW overhead by a few times; Phentos by two
    # orders of magnitude (the paper reports up to 7.53x and 308x).
    assert 1.5 < (by_key[("nanos-sw", "Task-Chain 1 dep")]
                  / by_key[("nanos-rv", "Task-Chain 1 dep")]) < 10
    assert (by_key[("nanos-sw", "Task-Free 15 deps")]
            / by_key[("phentos", "Task-Free 15 deps")]) > 100
    # The AXI baseline always sits above the tightly-integrated Nanos-RV.
    for workload in ("Task-Free 1 dep", "Task-Chain 15 deps"):
        assert by_key[("nanos-axi", workload)] > by_key[("nanos-rv", workload)]
