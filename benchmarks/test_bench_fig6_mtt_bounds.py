"""Figure 6 — MTT-derived maximum speedup bounds for an 8-core system.

Regenerates the four bound curves of Figure 6 from the measured Task-Chain
(1 dependence) lifetime overheads via Equation 1, capped at the core count.
The paper's qualitative claims are asserted: at ~1000-cycle tasks Phentos'
bound is already a few x while every other platform is below 1x, and at
~10000-cycle tasks Phentos has saturated at 8x while the others remain
under 1x.
"""

from __future__ import annotations

from repro.eval import bounds_report, default_task_sizes, figure6_mtt_bounds

from conftest import quick_mode, write_result

_SAMPLE_SIZES = (1e2, 1e3, 1e4, 1e5)


def test_figure6_mtt_speedup_bounds(benchmark, sim_config):
    num_tasks = 50 if quick_mode() else 120
    curves = {}

    def run():
        curves.clear()
        curves.update(figure6_mtt_bounds(
            sim_config, task_sizes=default_task_sizes(2, 5, 8),
            num_tasks=num_tasks,
        ))
        return curves

    benchmark.pedantic(run, rounds=1, iterations=1)
    report = bounds_report(curves, sample_sizes=_SAMPLE_SIZES)
    print("\nFigure 6 — MTT-derived maximum speedup (8 cores)\n" + report)
    write_result("figure6_mtt_bounds.txt", report)

    def bound_at(platform, size):
        curve = curves[platform]
        return min(curve, key=lambda p: abs(p.task_size_cycles - size)).max_speedup

    # Around 1000-cycle tasks: Phentos ~3x, everyone else far below 1x.
    assert 1.5 < bound_at("phentos", 1e3) <= 8.0
    assert bound_at("nanos-rv", 1e3) < 0.2
    assert bound_at("nanos-axi", 1e3) < 0.2
    assert bound_at("nanos-sw", 1e3) < 0.1
    # Around 10000-cycle tasks: Phentos saturated at 8x, the others < 1x.
    assert bound_at("phentos", 1e4) == 8.0
    assert bound_at("nanos-rv", 1e4) < 1.0
    assert bound_at("nanos-sw", 1e4) < 0.5
    # Ordering of the curves matches the ordering of the overheads.
    for size in _SAMPLE_SIZES:
        assert bound_at("phentos", size) >= bound_at("nanos-rv", size)
        assert bound_at("nanos-rv", size) >= bound_at("nanos-sw", size) - 1e-9
