"""Figure 9 — normalised benchmark performance for all inputs and runtimes.

Regenerates the 37-input sweep of Figure 9: blackscholes (12 inputs), jacobi
(3), sparseLU (10), stream-barr (6) and stream-deps (6), each executed by
the serial baseline, Nanos-SW, Nanos-RV and Phentos on eight cores.  The
printed rows are the speedups over the serial execution of the same input —
the same normalisation the paper plots.
"""

from __future__ import annotations

from repro.eval import benchmarks_report

from conftest import quick_mode, write_result


def test_figure9_benchmark_sweep(benchmark, benchmark_sweep):
    runs = benchmark.pedantic(lambda: benchmark_sweep, rounds=1, iterations=1)
    report = benchmarks_report(runs)
    print("\nFigure 9 — speedup over serial per benchmark input\n" + report)
    write_result("figure9_benchmarks.txt", report)

    expected_cases = 9 if quick_mode() else 37
    assert len(runs) == expected_cases

    for run in runs:
        speedup_sw = run.speedup_vs_serial("nanos-sw")
        speedup_rv = run.speedup_vs_serial("nanos-rv")
        speedup_ph = run.speedup_vs_serial("phentos")
        # Nobody exceeds the core count.
        assert max(speedup_sw, speedup_rv, speedup_ph) <= 8.0
        # Phentos is at worst marginally slower than Nanos-SW on any input
        # (the paper reports a single <=3% regression out of 37).
        assert speedup_ph >= 0.9 * speedup_sw

    # Coarse-grained inputs behave like the paper: every runtime gets decent
    # speedups and the gap between them narrows.
    coarse = [run for run in runs if run.mean_task_cycles > 2e5]
    assert coarse, "the sweep must include coarse-grained inputs"
    for run in coarse:
        assert run.speedup_vs_serial("nanos-sw") > 1.5
        assert run.speedup_over("phentos", "nanos-sw") < 2.0
    # Fine-grained inputs: only Phentos keeps a usable fraction of the
    # machine; Nanos variants collapse below serial speed.
    fine = [run for run in runs if run.mean_task_cycles < 2_000]
    assert fine, "the sweep must include fine-grained inputs"
    assert any(run.speedup_vs_serial("phentos") > 3.0 for run in fine)
    assert all(run.speedup_vs_serial("nanos-sw") < 1.0 for run in fine)
