#!/usr/bin/env python3
"""Record Figure 9 cache keys and case artifacts as a regression fixture.

Run from the repository root (PYTHONPATH=src) to (re)generate
``tests/data/figure9_fingerprints.json``.  The fixture pins:

* the cache key of every full-sweep and quick-sweep Figure 9 case,
* the canonical JSON encoding of the full case list,
* the full artifact JSON of two real (reduced-scale) case runs, and
* the full-sweep keys computed under an explicit *default*
  :class:`~repro.scenario.ScenarioSpec` (``scenario_default_keys``),
  which must equal ``full_case_keys`` byte-for-byte — the scenario layer
  must contribute nothing to deterministic keys,

so that refactors of the case/registry/scenario machinery can prove
their cache keys and artifacts stayed byte-identical.
"""

import json
from pathlib import Path

from repro.common.config import SimConfig
from repro.eval.experiments import benchmark_cases, run_benchmark_case
from repro.harness.artifacts import encode
from repro.harness.hashing import case_cache_key
from repro.scenario import ScenarioSpec

OUT = Path(__file__).resolve().parent.parent / "tests" / "data" / \
    "figure9_fingerprints.json"

def main() -> None:
    config = SimConfig()
    full = benchmark_cases()
    quick = benchmark_cases(quick=True)
    document = {
        "config": "SimConfig() default",
        "version_note": "keys embed repro.__version__; regenerate on bumps",
        "full_case_keys": {
            case.key: case_cache_key(case, config) for case in full
        },
        "quick_case_keys": {
            case.key: case_cache_key(case, config) for case in quick
        },
        "full_cases_encoded": json.dumps(
            encode(full), sort_keys=True, separators=(",", ":")),
        "scenario_default_keys": {
            case.key: case_cache_key(case, config,
                                     scenario=ScenarioSpec())
            for case in full
        },
        "artifact_runs": {},
    }
    tiny = benchmark_cases(quick=True, scale=0.05)[:2]
    for case in tiny:
        run = run_benchmark_case(case, config, num_workers=4)
        document["artifact_runs"][case_cache_key(case, config, 4)] = \
            json.dumps(encode(run), sort_keys=True, separators=(",", ":"))
    OUT.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    print(f"wrote {OUT} ({len(full)} full keys, {len(quick)} quick keys)")

if __name__ == "__main__":
    main()
